// Tests for link-congestion analysis.
#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/line.hpp"
#include "graph/topologies/star.hpp"
#include "sched/greedy.hpp"
#include "sim/congestion.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

TEST(Congestion, SingleObjectSingleLeg) {
  const Line line(5);
  InstanceBuilder b(line.graph, 1);
  b.add_transaction(0, {0});
  b.add_transaction(4, {0});
  b.set_object_home(0, 0);
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  const Schedule s = Schedule::from_commit_times(inst, {1, 5});
  const CongestionReport r = analyze_congestion(inst, m, s);
  EXPECT_EQ(r.peak_load, 1u);
  EXPECT_EQ(r.total_flow, 4);
  EXPECT_EQ(r.edges_used, 4u);
}

TEST(Congestion, NoMovementNoFlow) {
  const Line line(3);
  InstanceBuilder b(line.graph, 1);
  b.add_transaction(1, {0});
  b.set_object_home(0, 1);
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  const Schedule s = Schedule::from_commit_times(inst, {1});
  const CongestionReport r = analyze_congestion(inst, m, s);
  EXPECT_EQ(r.peak_load, 0u);
  EXPECT_EQ(r.total_flow, 0);
  EXPECT_EQ(r.edges_used, 0u);
}

TEST(Congestion, StarCenterIsTheHotEdge) {
  // All objects start on ray 0 and are requested at the tips of other
  // rays simultaneously: the ray-0 tip edge to the center carries all of
  // them at once.
  const Star star(4, 2);
  const std::size_t w = 3;
  InstanceBuilder b(star.graph, w);
  for (ObjectId o = 0; o < w; ++o) {
    b.set_object_home(o, star.node_at(0, 2));
    b.add_transaction(star.node_at(o + 1, 2), {o});
  }
  const Instance inst = b.build();
  const DenseMetric m(star.graph);
  // All three transactions commit at the same (feasible) step.
  const Schedule s = Schedule::from_commit_times(inst, {10, 10, 10});
  ASSERT_TRUE(validate(inst, m, s).ok);
  const CongestionReport r = analyze_congestion(inst, m, s);
  EXPECT_EQ(r.peak_load, 3u);
  ASSERT_FALSE(r.hottest.empty());
  // The hottest edge is on ray 0 or at the center: all paths share
  // node_at(0,2) -> node_at(0,1) -> center.
  const EdgeLoad& hot = r.hottest.front();
  EXPECT_EQ(hot.peak, 3u);
  EXPECT_EQ(hot.traversals, 3u);
}

TEST(Congestion, StaggeredCommitsReducePeak) {
  const Star star(4, 2);
  const std::size_t w = 3;
  InstanceBuilder b(star.graph, w);
  for (ObjectId o = 0; o < w; ++o) {
    b.set_object_home(o, star.node_at(0, 2));
    b.add_transaction(star.node_at(o + 1, 2), {o});
  }
  const Instance inst = b.build();
  const DenseMetric m(star.graph);
  // Far-apart commits => objects traverse the shared edge at different
  // times (each leg starts at step 0, so stagger by giving the objects
  // the same departure but... departures are all 0; peak stays 3).
  // Instead verify the invariant peak <= traversals on the shared edge.
  const Schedule s = Schedule::from_commit_times(inst, {10, 20, 30});
  const CongestionReport r = analyze_congestion(inst, m, s);
  ASSERT_FALSE(r.hottest.empty());
  EXPECT_LE(r.hottest.front().peak, r.hottest.front().traversals);
}

TEST(Congestion, FlowMatchesCommunicationMetric) {
  const Line line(12);
  Rng rng(5);
  const Instance inst = generate_uniform(
      line.graph, {.num_objects = 4, .objects_per_txn = 2}, rng);
  const DenseMetric m(line.graph);
  GreedyScheduler sched;
  const Schedule s = sched.run(inst, m);
  const CongestionReport r = analyze_congestion(inst, m, s);
  const ScheduleMetrics sm = compute_metrics(inst, m, s);
  // On a line every shortest path is unique, so the congestion walker's
  // total flow equals the communication metric exactly.
  EXPECT_EQ(r.total_flow, sm.communication);
}

TEST(Congestion, HottestListSortedAndCapped) {
  const Line line(20);
  Rng rng(6);
  const Instance inst = generate_uniform(
      line.graph, {.num_objects = 6, .objects_per_txn = 2}, rng);
  const DenseMetric m(line.graph);
  GreedyScheduler sched;
  const Schedule s = sched.run(inst, m);
  const CongestionReport r = analyze_congestion(inst, m, s, /*top_k=*/3);
  EXPECT_LE(r.hottest.size(), 3u);
  for (std::size_t i = 1; i < r.hottest.size(); ++i) {
    EXPECT_GE(r.hottest[i - 1].peak, r.hottest[i].peak);
  }
}

}  // namespace
}  // namespace dtm
