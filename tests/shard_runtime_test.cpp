// Tests for the sharded streaming pipeline (DESIGN.md §10).
//
//  * ShardMap unit properties: cluster partitions keep clusters whole, grid
//    partitions tile the mesh, everything else falls back to contiguous
//    id ranges; shard counts clamp to [1, n] and every shard is non-empty.
//  * shard_aligned_homes places object o inside shard o mod S, and a
//    group-local arrival source keeps each transaction's objects in one
//    group's pool.
//  * AdmissionController unit behavior: the fixed policy is constant; AIMD
//    raises additively while deferred work exists and the backlog grows,
//    cuts multiplicatively once caught up, and respects floor and cap.
//  * The tentpole property: shards=1 and shards=k produce bit-identical
//    schedules and StreamStats on every topology fixture, arrival model,
//    and coloring rule — with fixed and with adaptive admission.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "core/schedule.hpp"
#include "graph/metric.hpp"
#include "graph/partition.hpp"
#include "graph/topologies/butterfly.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/hypercube.hpp"
#include "graph/topologies/line.hpp"
#include "graph/topologies/star.hpp"
#include "sim/admission.hpp"
#include "sim/runtime.hpp"
#include "util/metrics.hpp"

namespace dtm {
namespace {

// ------------------------------------------------------------------------
// Shard map.

TEST(ShardMap, ClusterPartitionKeepsClustersWhole) {
  const ClusterGraph cg(4, 3, 6);
  const ShardMap map = make_shard_map(cg.graph, 2);
  EXPECT_EQ(map.scheme, "cluster");
  EXPECT_EQ(map.num_shards, 2u);
  for (NodeId v = 0; v < cg.graph.num_nodes(); ++v) {
    // Every node of a cluster shares the shard of the cluster's first node.
    const NodeId head = cg.node_at(cg.cluster_of(v), 0);
    EXPECT_EQ(map.shard_of(v), map.shard_of(head)) << "node " << v;
  }
  // Clusters are assigned in contiguous blocks: c -> c*S/alpha.
  for (std::size_t c = 0; c < cg.alpha; ++c) {
    EXPECT_EQ(map.shard_of(cg.node_at(c, 0)), c * 2 / cg.alpha);
  }
}

TEST(ShardMap, GridPartitionTilesTheMesh) {
  const Grid g(6, 6);
  const ShardMap map = make_shard_map(g.graph, 4);
  EXPECT_EQ(map.scheme, "grid");
  // 4 shards on a square mesh = a 2x2 tile grid of 3x3 blocks.
  for (std::size_t r = 0; r < g.rows; ++r) {
    for (std::size_t c = 0; c < g.cols; ++c) {
      const std::uint32_t want =
          static_cast<std::uint32_t>((r / 3) * 2 + (c / 3));
      EXPECT_EQ(map.shard_of(g.node_at(r, c)), want) << "(" << r << "," << c
                                                  << ")";
    }
  }
}

TEST(ShardMap, RangeFallbackOnUnstructuredGraphs) {
  const Clique k(10);
  const ShardMap map = make_shard_map(k.graph, 4);
  EXPECT_EQ(map.scheme, "range");
  // Contiguous ascending blocks: shard ids never decrease along node ids.
  for (NodeId v = 1; v < k.graph.num_nodes(); ++v) {
    EXPECT_LE(map.shard_of(v - 1), map.shard_of(v));
  }
  EXPECT_EQ(map.shard_of(0), 0u);
  EXPECT_EQ(map.shard_of(9), 3u);
}

TEST(ShardMap, ClampsAndCoversEveryFixture) {
  const Clique k(6);
  EXPECT_EQ(make_shard_map(k.graph, 0).num_shards, 1u);
  EXPECT_EQ(make_shard_map(k.graph, 100).num_shards, 6u);
  for (int which = 0; which <= 6; ++which) {
    const struct {
      std::unique_ptr<Clique> clique;
      std::unique_ptr<Line> line;
      std::unique_ptr<Grid> grid;
      std::unique_ptr<ClusterGraph> cluster;
      std::unique_ptr<Hypercube> hypercube;
      std::unique_ptr<Butterfly> butterfly;
      std::unique_ptr<Star> star;
    } f = {
        which == 0 ? std::make_unique<Clique>(10) : nullptr,
        which == 1 ? std::make_unique<Line>(16) : nullptr,
        which == 2 ? std::make_unique<Grid>(5) : nullptr,
        which == 3 ? std::make_unique<ClusterGraph>(3, 4, 6) : nullptr,
        which == 4 ? std::make_unique<Hypercube>(4) : nullptr,
        which == 5 ? std::make_unique<Butterfly>(2) : nullptr,
        which == 6 ? std::make_unique<Star>(4, 4) : nullptr,
    };
    const Graph& g = f.clique       ? f.clique->graph
                     : f.line       ? f.line->graph
                     : f.grid       ? f.grid->graph
                     : f.cluster    ? f.cluster->graph
                     : f.hypercube  ? f.hypercube->graph
                     : f.butterfly  ? f.butterfly->graph
                                    : f.star->graph;
    for (std::size_t s : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
      const ShardMap map = make_shard_map(g, s);
      ASSERT_EQ(map.node_shard.size(), g.num_nodes());
      const auto members = map.members();
      ASSERT_EQ(members.size(), map.num_shards);
      std::size_t covered = 0;
      for (std::size_t shard = 0; shard < members.size(); ++shard) {
        EXPECT_FALSE(members[shard].empty()) << "fixture " << which;
        covered += members[shard].size();
        for (std::size_t i = 0; i < members[shard].size(); ++i) {
          EXPECT_EQ(map.shard_of(members[shard][i]), shard);
          if (i > 0) {
            EXPECT_LT(members[shard][i - 1], members[shard][i]);
          }
        }
      }
      EXPECT_EQ(covered, g.num_nodes());
      // Pure function of (graph, S): a second call agrees exactly.
      EXPECT_EQ(make_shard_map(g, s).node_shard, map.node_shard);
    }
  }
}

TEST(ShardMap, ShardAlignedHomesLandInTheirShard) {
  const ClusterGraph cg(3, 4, 6);
  const ShardMap map = make_shard_map(cg.graph, 3);
  const std::vector<NodeId> homes = shard_aligned_homes(map, 10);
  ASSERT_EQ(homes.size(), 10u);
  for (ObjectId o = 0; o < homes.size(); ++o) {
    EXPECT_EQ(map.shard_of(homes[o]), o % 3) << "object " << o;
  }
}

// ------------------------------------------------------------------------
// Group-local arrivals.

TEST(ArrivalSources, GroupLocalDrawsStayInOneGroupPool) {
  const ClusterGraph cg(4, 4, 6);
  ArrivalStreamOptions opt;
  opt.num_txns = 64;
  opt.num_objects = 16;
  opt.objects_per_txn = 3;
  opt.rate = 2.0;
  opt.groups = 4;
  for (ArrivalModel model : {ArrivalModel::kPoisson, ArrivalModel::kBursty}) {
    auto src = make_arrival_source(model, cg.graph, opt, 21);
    ArrivingTxn txn;
    std::size_t pulled = 0;
    while (src->next(txn)) {
      ++pulled;
      ASSERT_EQ(txn.objects.size(), 3u);
      const ObjectId group = txn.objects[0] % 4;
      for (ObjectId o : txn.objects) {
        EXPECT_EQ(o % 4, group) << src->name();
        EXPECT_LT(o, 16u);
      }
    }
    EXPECT_EQ(pulled, 64u);
  }
}

// ------------------------------------------------------------------------
// Admission controllers.

TEST(Admission, FixedPolicyIsConstant) {
  AdmissionConfig cfg;
  cfg.max_live = 5;
  const auto ctl = make_admission_controller(cfg);
  EXPECT_EQ(ctl->name(), "fixed");
  EXPECT_EQ(ctl->quota(), 5u);
  ctl->on_window({.backlog = 100, .waiting = 50, .live = 5,
                  .committed_delta = 0});
  EXPECT_EQ(ctl->quota(), 5u);
  EXPECT_EQ(ctl->raises(), 0u);
  EXPECT_EQ(ctl->cuts(), 0u);
}

TEST(Admission, AimdRaisesWhileBehindAndCutsOnceCaughtUp) {
  AdmissionConfig cfg;
  cfg.policy = AdmissionPolicy::kAimd;
  cfg.min_live = 4;
  cfg.increase = 4;
  cfg.decrease = 0.5;
  cfg.cap = 32;
  const auto ctl = make_admission_controller(cfg);
  EXPECT_EQ(ctl->quota(), 4u);  // max_live 0 starts at the floor

  // Deferred work + growing backlog: additive raises, capped at 32.
  std::size_t backlog = 10;
  for (int i = 0; i < 10; ++i) {
    ctl->on_window({.backlog = backlog, .waiting = 3, .live = 4,
                    .committed_delta = 1});
    backlog += 5;
  }
  EXPECT_EQ(ctl->quota(), 32u);
  EXPECT_EQ(ctl->raises(), 7u);  // 4 -> 32 in steps of 4
  EXPECT_EQ(ctl->cuts(), 0u);

  // Growing backlog but nothing waiting: the quota was not the bottleneck.
  ctl->on_window({.backlog = backlog, .waiting = 0, .live = 4,
                  .committed_delta = 0});
  EXPECT_EQ(ctl->quota(), 32u);

  // Caught up (no waiters, backlog at the watermark): multiplicative cuts
  // down to the floor, never below.
  ctl->on_window({.backlog = 0, .waiting = 0, .live = 0,
                  .committed_delta = 8});
  EXPECT_EQ(ctl->quota(), 16u);
  ctl->on_window({.backlog = 0, .waiting = 0, .live = 0,
                  .committed_delta = 0});
  ctl->on_window({.backlog = 0, .waiting = 0, .live = 0,
                  .committed_delta = 0});
  EXPECT_EQ(ctl->quota(), 4u);
  const std::size_t cuts = ctl->cuts();
  ctl->on_window({.backlog = 0, .waiting = 0, .live = 0,
                  .committed_delta = 0});
  EXPECT_EQ(ctl->quota(), 4u);     // floor holds
  EXPECT_EQ(ctl->cuts(), cuts);    // a no-op cut is not counted
}

TEST(Admission, ParsePolicyNames) {
  EXPECT_EQ(parse_admission_policy("fixed"), AdmissionPolicy::kFixed);
  EXPECT_EQ(parse_admission_policy("adaptive"), AdmissionPolicy::kAimd);
  EXPECT_EQ(parse_admission_policy("aimd"), AdmissionPolicy::kAimd);
  EXPECT_THROW(parse_admission_policy("bogus"), Error);
}

// ------------------------------------------------------------------------
// The tentpole property: shard-count bit-identity on the golden fixtures.

struct Fixture {
  std::string name;
  std::unique_ptr<Line> line;
  std::unique_ptr<Grid> grid;
  std::unique_ptr<ClusterGraph> cluster;
  std::unique_ptr<Star> star;
  std::unique_ptr<Clique> clique;
  std::unique_ptr<Hypercube> hypercube;
  std::unique_ptr<Butterfly> butterfly;

  const Graph& graph() const {
    if (line) return line->graph;
    if (grid) return grid->graph;
    if (cluster) return cluster->graph;
    if (star) return star->graph;
    if (clique) return clique->graph;
    if (hypercube) return hypercube->graph;
    return butterfly->graph;
  }
};

Fixture make_fixture(int which) {
  Fixture f;
  switch (which) {
    case 0:
      f.name = "clique";
      f.clique = std::make_unique<Clique>(10);
      break;
    case 1:
      f.name = "line";
      f.line = std::make_unique<Line>(16);
      break;
    case 2:
      f.name = "grid";
      f.grid = std::make_unique<Grid>(5);
      break;
    case 3:
      f.name = "cluster";
      f.cluster = std::make_unique<ClusterGraph>(3, 4, 6);
      break;
    case 4:
      f.name = "hypercube";
      f.hypercube = std::make_unique<Hypercube>(4);
      break;
    case 5:
      f.name = "butterfly";
      f.butterfly = std::make_unique<Butterfly>(2);
      break;
    default:
      f.name = "star";
      f.star = std::make_unique<Star>(4, 4);
      break;
  }
  return f;
}

struct RunResult {
  Schedule sched;
  StreamStats stats;
  ShardLoadStats shard;
  std::size_t raises = 0;
  std::size_t cuts = 0;
};

RunResult run_stream(const Graph& g, const Metric& m, ArrivalModel model,
                     std::uint64_t seed, const StreamingRuntimeOptions& opts) {
  constexpr std::size_t kObjects = 12;
  ArrivalStreamOptions so;
  so.num_txns = 120;
  so.num_objects = kObjects;
  so.objects_per_txn = 2;
  so.rate = 1.5;
  so.burst_size = 8;
  auto src = make_arrival_source(model, g, so, seed);
  StreamingRuntime rt(g, m, StreamingRuntime::spread_homes(g, kObjects),
                      opts);
  rt.ingest_all(*src);
  rt.drain();
  return {rt.schedule(), rt.stats(), rt.shard_stats(),
          rt.admission().raises(), rt.admission().cuts()};
}

void expect_same_stats(const StreamStats& a, const StreamStats& b,
                       const std::string& label) {
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.admitted, b.admitted) << label;
  EXPECT_EQ(a.committed, b.committed) << label;
  EXPECT_EQ(a.deferrals, b.deferrals) << label;
  EXPECT_EQ(a.windows, b.windows) << label;
  EXPECT_EQ(a.last_arrival, b.last_arrival) << label;
  EXPECT_EQ(a.makespan, b.makespan) << label;
  EXPECT_EQ(a.peak_backlog, b.peak_backlog) << label;
  EXPECT_DOUBLE_EQ(a.mean_backlog, b.mean_backlog) << label;
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput) << label;
  EXPECT_EQ(a.dep_edges, b.dep_edges) << label;
  EXPECT_EQ(a.dep_max_weight, b.dep_max_weight) << label;
}

class ShardIdentity : public ::testing::TestWithParam<int> {};

TEST_P(ShardIdentity, SchedulesAndStatsMatchEverySingleShardRun) {
  const Fixture f = make_fixture(GetParam());
  const DenseMetric m(f.graph());
  const std::uint64_t seed = 7 + static_cast<std::uint64_t>(GetParam());
  for (ArrivalModel model : {ArrivalModel::kPoisson, ArrivalModel::kBursty,
                             ArrivalModel::kHotObject}) {
    for (ColoringRule rule :
         {ColoringRule::kFirstFit, ColoringRule::kPaperPigeonhole}) {
      StreamingRuntimeOptions base;
      base.window = 8;
      base.rule = rule;
      base.max_live_admitted = 24;  // exercise backpressure + deferrals
      const RunResult ref = run_stream(f.graph(), m, model, seed, base);
      for (std::size_t shards :
           {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
        StreamingRuntimeOptions opts = base;
        opts.shards = shards;
        const RunResult got = run_stream(f.graph(), m, model, seed, opts);
        const std::string label = f.name + "/" +
                                  std::to_string(static_cast<int>(model)) +
                                  "/rule" +
                                  std::to_string(static_cast<int>(rule)) +
                                  "/shards" + std::to_string(shards);
        EXPECT_EQ(ref.sched.commit_time, got.sched.commit_time) << label;
        EXPECT_EQ(ref.sched.object_order, got.sched.object_order) << label;
        expect_same_stats(ref.stats, got.stats, label);
        // Every admitted transaction is either shard-local or cross-shard,
        // and every cross-shard transaction seeds the fix-up set.
        EXPECT_EQ(got.shard.local_txns + got.shard.cross_txns,
                  got.stats.admitted)
            << label;
        EXPECT_GE(got.shard.fixup_txns, got.shard.cross_txns) << label;
      }
    }
  }
}

TEST_P(ShardIdentity, AdaptiveAdmissionIsShardCountInvariant) {
  const Fixture f = make_fixture(GetParam());
  const DenseMetric m(f.graph());
  const std::uint64_t seed = 40 + static_cast<std::uint64_t>(GetParam());
  StreamingRuntimeOptions base;
  base.window = 8;
  base.admission.policy = AdmissionPolicy::kAimd;
  base.admission.min_live = 8;
  base.admission.increase = 8;
  base.admission.decrease = 0.5;
  const RunResult ref =
      run_stream(f.graph(), m, ArrivalModel::kPoisson, seed, base);
  StreamingRuntimeOptions opts = base;
  opts.shards = 4;
  const RunResult got =
      run_stream(f.graph(), m, ArrivalModel::kPoisson, seed, opts);
  EXPECT_EQ(ref.sched.commit_time, got.sched.commit_time) << f.name;
  EXPECT_EQ(ref.sched.object_order, got.sched.object_order) << f.name;
  expect_same_stats(ref.stats, got.stats, f.name);
  // The controller saw identical feedback, so it took identical actions.
  EXPECT_EQ(ref.raises, got.raises) << f.name;
  EXPECT_EQ(ref.cuts, got.cuts) << f.name;
}

// The metrics spine inherits the tentpole property: with the registry
// enabled, the exported dtm-metrics-v1 JSONL of a shards=k run is
// byte-identical to the shards=1 run once the (explicitly per-shard)
// "shard" series rows are dropped — histograms, gauges, and the "window"
// series never see the shard count.
TEST_P(ShardIdentity, MetricsJsonlIsShardCountInvariant) {
  const Fixture f = make_fixture(GetParam());
  const DenseMetric m(f.graph());
  const std::uint64_t seed = 70 + static_cast<std::uint64_t>(GetParam());
  MetricsRegistry& mreg = MetricsRegistry::global();
  const auto run_jsonl = [&](std::size_t shards) {
    StreamingRuntimeOptions opts;
    opts.window = 8;
    opts.max_live_admitted = 24;
    opts.shards = shards;
    mreg.reset();
    mreg.set_enabled(true);
    run_stream(f.graph(), m, ArrivalModel::kBursty, seed, opts);
    const std::string jsonl = mreg.snapshot().to_jsonl();
    mreg.set_enabled(false);
    mreg.reset();
    // Drop the per-shard split series; everything else must be invariant.
    std::string out;
    std::size_t pos = 0;
    while (pos < jsonl.size()) {
      std::size_t nl = jsonl.find('\n', pos);
      if (nl == std::string::npos) nl = jsonl.size();
      const std::string line = jsonl.substr(pos, nl - pos);
      if (line.rfind("{\"series\":\"shard\"", 0) != 0) {
        out += line;
        out += '\n';
      }
      pos = nl + 1;
    }
    return out;
  };
  const std::string ref = run_jsonl(1);
  EXPECT_NE(ref.find("\"series\":\"window\""), std::string::npos);
  EXPECT_NE(ref.find("\"hist\":\"stream.latency.arrival_to_commit\""),
            std::string::npos);
  for (std::size_t shards : {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    EXPECT_EQ(run_jsonl(shards), ref)
        << f.name << " shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(AllFixtures, ShardIdentity,
                         ::testing::Range(0, 7));

// The sharded schedule is not just self-consistent — it survives the
// engine's stepwise replay (queued links, planned-degraded discipline).
TEST(ShardedRuntime, ReplayCheckPassesWithShards) {
  const ClusterGraph cg(4, 4, 6);
  const DenseMetric m(cg.graph);
  StreamingRuntimeOptions opts;
  opts.window = 8;
  opts.shards = 4;
  opts.replay_check = true;
  EXPECT_NO_THROW(
      run_stream(cg.graph, m, ArrivalModel::kPoisson, 11, opts));
}

// Group-local load on a shard-aligned placement stays mostly shard-local —
// the regime the parallel coloring pipeline is built for.
TEST(ShardedRuntime, GroupLocalLoadIsShardLocal) {
  const ClusterGraph cg(4, 4, 6);
  const DenseMetric m(cg.graph);
  const ShardMap map = make_shard_map(cg.graph, 4);
  ArrivalStreamOptions so;
  so.num_txns = 200;
  so.num_objects = 16;
  so.objects_per_txn = 2;
  so.rate = 2.0;
  so.groups = 4;
  auto src = make_arrival_source(ArrivalModel::kPoisson, cg.graph, so, 13);
  StreamingRuntimeOptions opts;
  opts.window = 8;
  opts.shards = 4;
  StreamingRuntime rt(cg.graph, m, shard_aligned_homes(map, 16), opts);
  rt.ingest_all(*src);
  const StreamStats& st = rt.drain();
  const ShardLoadStats& shard = rt.shard_stats();
  EXPECT_EQ(shard.num_shards, 4u);
  EXPECT_EQ(shard.scheme, "cluster");
  EXPECT_EQ(shard.local_txns, st.admitted);  // no cross-shard transactions
  EXPECT_EQ(shard.cross_txns, 0u);
  EXPECT_EQ(shard.fixup_txns, 0u);
  EXPECT_GT(shard.peak_shard_members, 0u);
  EXPECT_EQ(st.committed, 200u);
}

}  // namespace
}  // namespace dtm
