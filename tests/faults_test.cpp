// Tests for the fault-injection & recovery subsystem (sim/faults.hpp).
//
//  * FaultModel unit properties: determinism, nested afflicted sets as the
//    rate grows, the last-step-of-window usability clamp.
//  * Fault-free bit-identity: simulate() with a null or inactive fault
//    model returns a SimResult identical to the reliable simulator on every
//    topology fixture — the tentpole's "no faults, no change" guarantee.
//  * Recovery semantics against hand-computed outcomes: rerouting around a
//    scheduled outage, stalling when rerouting is disabled, retransmission
//    exhaustion, and monotone makespan inflation in the fault rate.
#include <gtest/gtest.h>

#include <memory>

#include "core/generators.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/butterfly.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/hypercube.hpp"
#include "graph/topologies/line.hpp"
#include "graph/topologies/star.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

TEST(FaultModel, InactiveByDefault) {
  const FaultModel model(FaultConfig{});
  EXPECT_FALSE(model.active());
  EXPECT_FALSE(model.link_down(0, 1, 5));
  EXPECT_EQ(model.hop_cost(0, 1, 3, 5), 3);
  EXPECT_FALSE(model.transfer_lost(0, 0, 0));
}

TEST(FaultModel, DecisionsAreDeterministic) {
  FaultConfig cfg;
  cfg.link_outage_rate = 0.2;
  cfg.slowdown_rate = 0.2;
  cfg.loss_rate = 0.2;
  cfg.seed = 11;
  const FaultModel a(cfg);
  const FaultModel b(cfg);
  for (NodeId u = 0; u < 6; ++u) {
    for (NodeId v = u + 1; v < 6; ++v) {
      for (Time t = 0; t < 64; ++t) {
        EXPECT_EQ(a.link_down(u, v, t), b.link_down(u, v, t));
        // Undirected links: direction must not matter.
        EXPECT_EQ(a.link_down(u, v, t), a.link_down(v, u, t));
        EXPECT_EQ(a.hop_cost(u, v, 2, t), b.hop_cost(u, v, 2, t));
      }
    }
  }
  for (ObjectId o = 0; o < 4; ++o) {
    for (std::size_t leg = 0; leg < 4; ++leg) {
      for (std::size_t attempt = 0; attempt < 4; ++attempt) {
        EXPECT_EQ(a.transfer_lost(o, leg, attempt),
                  b.transfer_lost(o, leg, attempt));
      }
    }
  }
}

// The decision hash does not depend on the rate, so every link/window down
// at a low rate is also down at any higher rate (this nesting is what makes
// the bench's inflation curves monotone).
TEST(FaultModel, AfflictedSetsAreNestedAcrossRates) {
  FaultConfig lo_cfg;
  lo_cfg.link_outage_rate = 0.05;
  lo_cfg.seed = 3;
  FaultConfig hi_cfg = lo_cfg;
  hi_cfg.link_outage_rate = 0.4;
  const FaultModel lo(lo_cfg);
  const FaultModel hi(hi_cfg);
  int lo_down = 0, hi_down = 0;
  for (NodeId u = 0; u < 8; ++u) {
    for (NodeId v = u + 1; v < 8; ++v) {
      for (Time t = 0; t < 200; ++t) {
        const bool l = lo.link_down(u, v, t);
        const bool h = hi.link_down(u, v, t);
        lo_down += l;
        hi_down += h;
        if (l) {
          EXPECT_TRUE(h) << "link {" << u << "," << v << "} step " << t;
        }
      }
    }
  }
  EXPECT_GT(lo_down, 0);
  EXPECT_GT(hi_down, lo_down);
}

// Even at rate 1 with an over-long outage_duration, the last step of every
// window stays usable, so link_up_at always terminates with a nearby step.
TEST(FaultModel, LastStepOfWindowStaysUsable) {
  FaultConfig cfg;
  cfg.link_outage_rate = 1.0;
  cfg.outage_duration = 100;  // > window: clamped to window - 1
  cfg.window = 8;
  const FaultModel model(cfg);
  for (Time t = 0; t < 7; ++t) EXPECT_TRUE(model.link_down(0, 1, t));
  EXPECT_FALSE(model.link_down(0, 1, 7));
  EXPECT_EQ(model.link_up_at(0, 1, 0), 7);
  EXPECT_EQ(model.link_up_at(0, 1, 7), 7);
}

// window == 1 would clamp every outage to zero length (the last step of a
// window always stays usable), silently disabling the outage rate — the
// constructor rejects the combination instead.
TEST(FaultModel, RejectsDegenerateOutageWindow) {
  FaultConfig cfg;
  cfg.link_outage_rate = 0.5;
  cfg.window = 1;
  EXPECT_THROW(FaultModel{cfg}, Error);
  cfg.link_outage_rate = 0.0;  // without outages, window = 1 is fine
  EXPECT_NO_THROW(FaultModel{cfg});
}

TEST(FaultModel, ScheduledOutageActivatesAndEnds) {
  FaultConfig cfg;
  cfg.scheduled.push_back({2, 5, /*start=*/10, /*duration=*/4});
  const FaultModel model(cfg);
  EXPECT_TRUE(model.active());
  EXPECT_FALSE(model.link_down(2, 5, 9));
  EXPECT_TRUE(model.link_down(2, 5, 10));
  EXPECT_TRUE(model.link_down(5, 2, 13));
  EXPECT_FALSE(model.link_down(2, 5, 14));
  EXPECT_EQ(model.link_up_at(2, 5, 10), 14);
  EXPECT_FALSE(model.link_down(3, 4, 11));  // other links unaffected
}

// ------------------------------------------------------------------------
// Fault-free bit-identity on every topology fixture.

struct Fixture {
  std::string name;
  std::unique_ptr<Line> line;
  std::unique_ptr<Grid> grid;
  std::unique_ptr<ClusterGraph> cluster;
  std::unique_ptr<Star> star;
  std::unique_ptr<Clique> clique;
  std::unique_ptr<Hypercube> hypercube;
  std::unique_ptr<Butterfly> butterfly;

  const Graph& graph() const {
    if (line) return line->graph;
    if (grid) return grid->graph;
    if (cluster) return cluster->graph;
    if (star) return star->graph;
    if (clique) return clique->graph;
    if (hypercube) return hypercube->graph;
    return butterfly->graph;
  }
};

Fixture make_fixture(int which) {
  Fixture f;
  switch (which) {
    case 0:
      f.name = "clique";
      f.clique = std::make_unique<Clique>(10);
      break;
    case 1:
      f.name = "line";
      f.line = std::make_unique<Line>(16);
      break;
    case 2:
      f.name = "grid";
      f.grid = std::make_unique<Grid>(5);
      break;
    case 3:
      f.name = "cluster";
      f.cluster = std::make_unique<ClusterGraph>(3, 4, 6);
      break;
    case 4:
      f.name = "hypercube";
      f.hypercube = std::make_unique<Hypercube>(4);
      break;
    case 5:
      f.name = "butterfly";
      f.butterfly = std::make_unique<Butterfly>(2);
      break;
    default:
      f.name = "star";
      f.star = std::make_unique<Star>(4, 4);
      break;
  }
  return f;
}

void expect_identical(const SimResult& a, const SimResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.ok, b.ok) << label;
  EXPECT_EQ(a.violations, b.violations) << label;
  EXPECT_EQ(a.planned_makespan, b.planned_makespan) << label;
  EXPECT_EQ(a.realized_makespan, b.realized_makespan) << label;
  EXPECT_EQ(a.object_travel, b.object_travel) << label;
  EXPECT_TRUE(a.events == b.events) << label;
  EXPECT_TRUE(a.faults == b.faults) << label;
}

class FaultFreeBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(FaultFreeBitIdentity, InactiveModelKeepsReliablePath) {
  const Fixture topo = make_fixture(GetParam());
  const DenseMetric metric(topo.graph());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const Instance inst = generate_uniform(
      topo.graph(), {.num_objects = 6, .objects_per_txn = 2}, rng);
  const auto sched = make_scheduler("greedy-ff");
  const Schedule s = sched->run(inst, metric);

  SimOptions plain;
  plain.record_events = true;
  plain.record_hops = true;
  const SimResult reliable = simulate(inst, metric, s, plain);
  ASSERT_TRUE(reliable.ok) << topo.name << ": " << reliable.summary();
  EXPECT_EQ(reliable.planned_makespan, reliable.realized_makespan);
  EXPECT_TRUE(reliable.faults == FaultStats{});

  // An all-zero-rate model is inactive: identical output, same code path.
  const FaultModel inactive(FaultConfig{});
  SimOptions with_model = plain;
  with_model.faults = &inactive;
  expect_identical(reliable, simulate(inst, metric, s, with_model),
                   topo.name + "/inactive-model");
}

// An *active* model whose faults never fire (one scheduled outage far past
// the horizon) takes the fault-executor path; it must agree with the
// reliable simulator on every aggregate.
TEST_P(FaultFreeBitIdentity, IdleFaultExecutorAgreesWithReliablePath) {
  const Fixture topo = make_fixture(GetParam());
  const DenseMetric metric(topo.graph());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const Instance inst = generate_uniform(
      topo.graph(), {.num_objects = 6, .objects_per_txn = 2}, rng);
  const auto sched = make_scheduler("greedy-ff");
  const Schedule s = sched->run(inst, metric);
  const SimResult reliable = simulate(inst, metric, s);
  ASSERT_TRUE(reliable.ok);

  FaultConfig cfg;
  cfg.scheduled.push_back({0, 1, /*start=*/1 << 30, /*duration=*/1});
  const FaultModel idle(cfg);
  ASSERT_TRUE(idle.active());
  SimOptions opts;
  opts.faults = &idle;
  const SimResult r = simulate(inst, metric, s, opts);
  ASSERT_TRUE(r.ok) << topo.name << ": " << r.summary();
  EXPECT_EQ(r.planned_makespan, reliable.planned_makespan) << topo.name;
  EXPECT_EQ(r.realized_makespan, reliable.realized_makespan) << topo.name;
  EXPECT_EQ(r.object_travel, reliable.object_travel) << topo.name;
  EXPECT_TRUE(r.faults == FaultStats{}) << topo.name;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, FaultFreeBitIdentity,
                         ::testing::Range(0, 7));

// ------------------------------------------------------------------------
// Recovery semantics against hand-computed outcomes.

// Diamond: 0-1-3 is the shortest 0->3 route (cost 2); the 0-2-3 detour
// costs 4. Object o0 starts at node 0, T0@0 commits at 1, T1@3 at 3.
struct Diamond {
  Graph g;
  Diamond() {
    GraphBuilder b(4);
    b.add_edge(0, 1, 1);
    b.add_edge(1, 3, 1);
    b.add_edge(0, 2, 2);
    b.add_edge(2, 3, 2);
    g = b.build();
  }
};

Instance diamond_instance(const Diamond& d) {
  InstanceBuilder b(d.g, 1);
  b.add_transaction(0, {0});
  b.add_transaction(3, {0});
  b.set_object_home(0, 0);
  return b.build();
}

TEST(Recovery, ReroutesAroundScheduledOutage) {
  const Diamond d;
  const Instance inst = diamond_instance(d);
  const DenseMetric m(d.g);
  const Schedule s = Schedule::from_commit_times(inst, {1, 3});
  ASSERT_TRUE(simulate(inst, m, s).ok);

  FaultConfig cfg;
  cfg.scheduled.push_back({0, 1, /*start=*/1, /*duration=*/9});
  const FaultModel model(cfg);
  SimOptions opts;
  opts.faults = &model;
  const SimResult r = simulate(inst, m, s, opts);
  ASSERT_TRUE(r.ok) << r.summary();
  // o0 departs node 0 at step 1, finds 0-1 down, detours 0-2-3 (cost 4):
  // arrival 5, so T1 is re-issued at 5 instead of its planned step 3.
  EXPECT_EQ(r.planned_makespan, 3);
  EXPECT_EQ(r.realized_makespan, 5);
  EXPECT_EQ(r.object_travel, 4);
  EXPECT_EQ(r.faults.injected, 1u);
  EXPECT_EQ(r.faults.reroutes, 1u);
  EXPECT_EQ(r.faults.degraded_commits, 1u);
  EXPECT_EQ(r.faults.stall_steps, 2);
}

TEST(Recovery, StallsWhenReroutingDisabled) {
  const Diamond d;
  const Instance inst = diamond_instance(d);
  const DenseMetric m(d.g);
  const Schedule s = Schedule::from_commit_times(inst, {1, 3});

  FaultConfig cfg;
  cfg.scheduled.push_back({0, 1, /*start=*/1, /*duration=*/9});
  const FaultModel model(cfg);
  SimOptions opts;
  opts.faults = &model;
  opts.recovery.reroute = false;
  const SimResult r = simulate(inst, m, s, opts);
  ASSERT_TRUE(r.ok) << r.summary();
  // The object waits at node 0 until the link returns at step 10, then
  // takes the planned 0-1-3 route: arrival 12.
  EXPECT_EQ(r.realized_makespan, 12);
  EXPECT_EQ(r.object_travel, 2);
  EXPECT_EQ(r.faults.reroutes, 0u);
  EXPECT_EQ(r.faults.degraded_commits, 1u);
  EXPECT_EQ(r.faults.stall_steps, 9);
}

TEST(Recovery, BoundedStallReportsViolation) {
  const Diamond d;
  const Instance inst = diamond_instance(d);
  const DenseMetric m(d.g);
  const Schedule s = Schedule::from_commit_times(inst, {1, 3});

  FaultConfig cfg;
  cfg.scheduled.push_back({0, 1, /*start=*/1, /*duration=*/9});
  const FaultModel model(cfg);
  SimOptions opts;
  opts.faults = &model;
  opts.recovery.reroute = false;
  opts.recovery.max_commit_stall = 4;  // realized stall is 9
  const SimResult r = simulate(inst, m, s, opts);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("max_commit_stall"), std::string::npos);
}

TEST(Recovery, RetransmissionExhaustionIsViolation) {
  const Line line(3);
  InstanceBuilder b(line.graph, 1);
  b.add_transaction(0, {0});
  b.add_transaction(2, {0});
  b.set_object_home(0, 0);
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  const Schedule s = Schedule::from_commit_times(inst, {1, 3});

  FaultConfig cfg;
  cfg.loss_rate = 1.0;  // every send attempt is lost
  const FaultModel model(cfg);
  SimOptions opts;
  opts.faults = &model;
  opts.recovery.max_retries = 2;
  opts.recovery.backoff_base = 1;
  const SimResult r = simulate(inst, m, s, opts);
  EXPECT_FALSE(r.ok);
  ASSERT_FALSE(r.violations.empty());
  EXPECT_NE(r.violations.front().find("lost after 2"), std::string::npos);
  // Backoff after attempts 0,1,2 shifts departure 1 -> 8; travel 2 more.
  EXPECT_EQ(r.faults.retries, 3u);
  EXPECT_EQ(r.realized_makespan, 10);
}

// Large attempt counts saturate at backoff_cap instead of shifting past
// the width of Time (regression: backoff_base << attempt overflowed for
// backoff_base > 1 once the shift grew large).
TEST(Recovery, BackoffSaturatesAtCapForLargeAttemptCounts) {
  const Line line(3);
  InstanceBuilder b(line.graph, 1);
  b.add_transaction(0, {0});
  b.add_transaction(2, {0});
  b.set_object_home(0, 0);
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  const Schedule s = Schedule::from_commit_times(inst, {1, 3});

  FaultConfig cfg;
  cfg.loss_rate = 1.0;  // every send attempt is lost
  const FaultModel model(cfg);
  SimOptions opts;
  opts.faults = &model;
  opts.recovery.max_retries = 63;
  opts.recovery.backoff_base = 16;
  opts.recovery.backoff_cap = 64;
  const SimResult r = simulate(inst, m, s, opts);
  EXPECT_FALSE(r.ok);  // retransmissions exhausted
  EXPECT_EQ(r.faults.retries, 64u);
  // Delays: 16, 32, then the cap (64) for the remaining 62 attempts;
  // departure 1 + 4016, plus travel 2 on the line.
  EXPECT_EQ(r.realized_makespan, 1 + 16 + 32 + 62 * 64 + 2);
}

// A stalled commit gates every later requester of its objects: the
// successor's realized commit waits for the predecessor's *realized*
// release (not its planned one), so realized commit times never go
// backwards along an object's visit chain.
TEST(Recovery, StallPropagatesAlongObjectChain) {
  const Line line(4);
  InstanceBuilder b(line.graph, 2);
  b.add_transaction(1, {0, 1});  // T0 @node1: o0 local, o1 from node 3
  b.add_transaction(0, {0});     // T1 @node0: gets o0 after T0 releases it
  b.set_object_home(0, 1);
  b.set_object_home(1, 3);
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  const Schedule s = Schedule::from_commit_times(inst, {3, 4});
  ASSERT_TRUE(simulate(inst, m, s).ok);

  FaultConfig cfg;
  cfg.scheduled.push_back({2, 3, /*start=*/0, /*duration=*/5});
  const FaultModel model(cfg);
  SimOptions opts;
  opts.faults = &model;
  const SimResult r = simulate(inst, m, s, opts);
  ASSERT_TRUE(r.ok) << r.summary();
  // o1 waits out the outage at node 3 until step 5 and reaches node 1 at 7,
  // so T0 commits at 7 (stall 4). o0 is only released then, arriving at
  // node 0 at 8, so T1 is re-issued at 8 (stall 4) — not its planned step 4.
  EXPECT_EQ(r.planned_makespan, 4);
  EXPECT_EQ(r.realized_makespan, 8);
  EXPECT_EQ(r.faults.degraded_commits, 2u);
  EXPECT_EQ(r.faults.stall_steps, 8);
}

TEST(Recovery, EventLogAndStatsAreSeedDeterministic) {
  const ClusterGraph topo(3, 4, 6);
  const DenseMetric m(topo.graph);
  Rng rng(21);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 8, .objects_per_txn = 2}, rng);
  const auto sched = make_scheduler_for(inst, "cluster", 21);
  const Schedule s = sched->run(inst, m);

  FaultConfig cfg;
  cfg.link_outage_rate = 0.15;
  cfg.loss_rate = 0.05;
  cfg.slowdown_rate = 0.1;
  cfg.seed = 9;
  const FaultModel model(cfg);
  SimOptions opts;
  opts.record_events = true;
  opts.faults = &model;
  const SimResult a = simulate(inst, m, s, opts);
  const SimResult b = simulate(inst, m, s, opts);
  expect_identical(a, b, "seeded replay");
  EXPECT_GE(a.realized_makespan, a.planned_makespan);
}

// Stall-only recovery on the line (no alternate routes): by the nesting
// property, the realized makespan is monotone in the outage rate.
TEST(Recovery, MakespanInflationMonotoneInRate) {
  const Line line(12);
  const DenseMetric m(line.graph);
  Rng rng(5);
  const Instance inst = generate_uniform(
      line.graph, {.num_objects = 6, .objects_per_txn = 2}, rng);
  const auto sched = make_scheduler_for(inst, "line", 5);
  const Schedule s = sched->run(inst, m);

  Time prev = 0;
  for (const double rate : {0.0, 0.05, 0.1, 0.2, 0.4}) {
    FaultConfig cfg;
    cfg.link_outage_rate = rate;
    cfg.seed = 7;  // same seed across rates => nested afflicted sets
    const FaultModel model(cfg);
    SimOptions opts;
    opts.faults = &model;
    const SimResult r = simulate(inst, m, s, opts);
    ASSERT_TRUE(r.ok) << "rate " << rate << ": " << r.summary();
    EXPECT_GE(r.realized_makespan, prev) << "rate " << rate;
    prev = r.realized_makespan;
  }
}

}  // namespace
}  // namespace dtm
