// Tests for trace-driven adaptive rescheduling: partial-state scheduler
// restarts (sched/reschedule.hpp) and the engine's splice machinery
// (SimOptions::reschedule). Covers the ISSUE-6 checklist: determinism
// across the 7 topology fixtures, a hand-computed diamond splice with a
// known recovered makespan, validity of every spliced schedule (reusing
// validate.*), and the rw partial-state variant.
#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/partial.hpp"
#include "core/rw.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/butterfly.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/hypercube.hpp"
#include "graph/topologies/line.hpp"
#include "graph/topologies/star.hpp"
#include "sched/registry.hpp"
#include "sched/reschedule.hpp"
#include "sched/rw_greedy.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_analysis.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace {

using namespace dtm;

// -------------------------------------------------------------- fixtures
// The faults_test / engine_test / trace_test topology recipe: seed =
// which * 131 + 7, 6 objects, 2 objects per transaction, greedy-ff.

struct Fixture {
  std::string name;
  std::unique_ptr<Line> line;
  std::unique_ptr<Grid> grid;
  std::unique_ptr<ClusterGraph> cluster;
  std::unique_ptr<Star> star;
  std::unique_ptr<Clique> clique;
  std::unique_ptr<Hypercube> hypercube;
  std::unique_ptr<Butterfly> butterfly;

  const Graph& graph() const {
    if (line) return line->graph;
    if (grid) return grid->graph;
    if (cluster) return cluster->graph;
    if (star) return star->graph;
    if (clique) return clique->graph;
    if (hypercube) return hypercube->graph;
    return butterfly->graph;
  }
};

Fixture make_fixture(int which) {
  Fixture f;
  switch (which) {
    case 0:
      f.name = "clique";
      f.clique = std::make_unique<Clique>(10);
      break;
    case 1:
      f.name = "line";
      f.line = std::make_unique<Line>(16);
      break;
    case 2:
      f.name = "grid";
      f.grid = std::make_unique<Grid>(5);
      break;
    case 3:
      f.name = "cluster";
      f.cluster = std::make_unique<ClusterGraph>(3, 4, 6);
      break;
    case 4:
      f.name = "hypercube";
      f.hypercube = std::make_unique<Hypercube>(4);
      break;
    case 5:
      f.name = "butterfly";
      f.butterfly = std::make_unique<Butterfly>(2);
      break;
    default:
      f.name = "star";
      f.star = std::make_unique<Star>(4, 4);
      break;
  }
  return f;
}

Instance fixture_instance(const Fixture& topo, int which) {
  Rng rng(static_cast<std::uint64_t>(which) * 131 + 7);
  return generate_uniform(topo.graph(),
                          {.num_objects = 6, .objects_per_txn = 2}, rng);
}

FaultConfig fixture_faults(int which) {
  FaultConfig fc;
  fc.link_outage_rate = 0.2;
  fc.loss_rate = 0.05;
  fc.seed = static_cast<std::uint64_t>(which) * 131 + 7;
  return fc;
}

/// Aggressive policy so the fixtures actually splice.
ReschedulePolicy eager_policy() {
  ReschedulePolicy p;
  p.slack_threshold = 1;
  p.cooldown = 4;
  p.max_reschedules = 8;
  return p;
}

/// Wraps a RescheduleFn and keeps a copy of every accepted splice.
RescheduleFn capturing(RescheduleFn inner,
                       std::shared_ptr<std::vector<Schedule>> out) {
  return [inner = std::move(inner),
          out = std::move(out)](const PartialExecution& px) {
    std::unique_ptr<Schedule> s = inner(px);
    if (s != nullptr) out->push_back(*s);
    return s;
  };
}

struct ActiveRun {
  SimResult sim;
  std::shared_ptr<std::vector<Schedule>> splices;
};

ActiveRun run_active(const Instance& inst, const Metric& metric,
                     const Schedule& s, const FaultModel& model) {
  ActiveRun out;
  out.splices = std::make_shared<std::vector<Schedule>>();
  SimOptions opts;
  opts.faults = &model;
  opts.reschedule =
      capturing(make_rescheduler(inst, metric, "greedy-ff"), out.splices);
  opts.reschedule_policy = eager_policy();
  out.sim = simulate(inst, metric, s, opts);
  return out;
}

// ----------------------------------------------------------- determinism

class RescheduleFixtures : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    TraceRecorder::global().set_enabled(false);
    TraceRecorder::global().clear();
  }
  void TearDown() override { TraceRecorder::global().set_enabled(false); }
};

// Same seed, same fixture: two active runs must agree on every aggregate
// and produce identical spliced schedules.
TEST_P(RescheduleFixtures, DeterministicAcrossRuns) {
  const int which = GetParam();
  const Fixture topo = make_fixture(which);
  const DenseMetric metric(topo.graph());
  const Instance inst = fixture_instance(topo, which);
  const Schedule s = make_scheduler("greedy-ff")->run(inst, metric);
  const FaultModel model(fixture_faults(which));

  const ActiveRun a = run_active(inst, metric, s, model);
  const ActiveRun b = run_active(inst, metric, s, model);
  ASSERT_TRUE(a.sim.ok) << topo.name << ": " << a.sim.summary();
  ASSERT_TRUE(b.sim.ok) << topo.name << ": " << b.sim.summary();
  EXPECT_EQ(a.sim.realized_makespan, b.sim.realized_makespan) << topo.name;
  EXPECT_EQ(a.sim.planned_makespan, b.sim.planned_makespan) << topo.name;
  EXPECT_EQ(a.sim.object_travel, b.sim.object_travel) << topo.name;
  EXPECT_EQ(a.sim.reschedules, b.sim.reschedules) << topo.name;
  EXPECT_EQ(a.sim.reschedules, a.splices->size()) << topo.name;

  ASSERT_EQ(a.splices->size(), b.splices->size()) << topo.name;
  for (std::size_t i = 0; i < a.splices->size(); ++i) {
    EXPECT_EQ((*a.splices)[i].commit_time, (*b.splices)[i].commit_time)
        << topo.name << " splice " << i;
    EXPECT_EQ((*a.splices)[i].object_order, (*b.splices)[i].object_order)
        << topo.name << " splice " << i;
  }
}

// Property: every spliced schedule is a feasible schedule of the original
// instance (object-exclusivity and precedence, via validate.*), keeps the
// committed prefix ordering of the incumbent, and the traced critical
// path still tiles [0, realized makespan] exactly.
TEST_P(RescheduleFixtures, SplicesValidateAndPathTilesMakespan) {
  const int which = GetParam();
  const Fixture topo = make_fixture(which);
  const DenseMetric metric(topo.graph());
  const Instance inst = fixture_instance(topo, which);
  const Schedule s = make_scheduler("greedy-ff")->run(inst, metric);
  const FaultModel model(fixture_faults(which));

  TraceRecorder& rec = TraceRecorder::global();
  rec.set_enabled(true);
  const ActiveRun a = run_active(inst, metric, s, model);
  rec.set_enabled(false);
  ASSERT_TRUE(a.sim.ok) << topo.name << ": " << a.sim.summary();

  for (std::size_t i = 0; i < a.splices->size(); ++i) {
    const ValidationResult vr = validate(inst, metric, (*a.splices)[i]);
    EXPECT_TRUE(vr.ok) << topo.name << " splice " << i << ":\n"
                       << vr.summary();
  }

  const TraceSummary sum = summarize_trace(rec.events());
  EXPECT_TRUE(sum.problems.empty())
      << topo.name << ": " << sum.problems.front();
  EXPECT_EQ(sum.makespan, a.sim.realized_makespan) << topo.name;
  EXPECT_EQ(sum.critical_total, a.sim.realized_makespan) << topo.name;
  EXPECT_TRUE(sum.consistent()) << topo.name;
  EXPECT_EQ(sum.reschedules, a.sim.reschedules) << topo.name;
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, RescheduleFixtures,
                         ::testing::Range(0, 7));

// ------------------------------------------------ hand-computed diamond
// Diamond 0-1:1, 1-3:1, 0-2:4, 2-3:2 — the heavy 0-2 edge makes every
// 1<->2 route go via node 3 (distance 3), away from the faulted link.
// o0 starts at node 0, o1 at node 3. T0@1 needs {o0,o1}; T1@2 needs {o1}.
// Planned orders: o0:[T0], o1:[T0,T1]; commit times T0=2, T1=5.
//
// A 20-step outage on link 0-1 (reroute off) pins o0's first leg at node 0
// until step 20; it arrives at node 1 at 21. Passively, T0 commits at 21
// and o1 only then travels 1->2 (distance 3), so T1 commits at 24.
//
// Actively, the slack monitor sees lag now-2 and fires at lag 5 > 4, i.e.
// step 7. The splice flips o1's suffix to [T1, T0]: o1 is redirected
// 1->3->2 at step 7 (arrives 10, T1 commits at its planned step 10),
// returns 2->3->1 by 13, and T0 still waits for o0 until 21. Recovered
// makespan: 21 instead of 24 — the recovery is exactly o1's 1->2 leg.
struct Diamond {
  Graph g;
  Diamond() {
    GraphBuilder b(4);
    b.add_edge(0, 1, 1);
    b.add_edge(1, 3, 1);
    b.add_edge(0, 2, 4);
    b.add_edge(2, 3, 2);
    g = b.build();
  }
};

TEST(RescheduleDiamond, MidFlightOutageSpliceRecoversKnownMakespan) {
  const Diamond d;
  InstanceBuilder ib(d.g, 2);
  ib.set_object_home(0, 0);
  ib.set_object_home(1, 3);
  ib.add_transaction(1, {0, 1});  // T0
  ib.add_transaction(2, {1});     // T1
  const Instance inst = ib.build();
  const DenseMetric m(d.g);
  const Schedule s = Schedule::from_commit_times(inst, {2, 5});
  ASSERT_TRUE(validate(inst, m, s).ok);

  FaultConfig cfg;
  cfg.scheduled.push_back({0, 1, /*start=*/0, /*duration=*/20});
  const FaultModel model(cfg);

  SimOptions passive;
  passive.faults = &model;
  passive.recovery.reroute = false;
  const SimResult p = simulate(inst, m, s, passive);
  ASSERT_TRUE(p.ok) << p.summary();
  EXPECT_EQ(p.realized_makespan, 24);
  EXPECT_EQ(p.reschedules, 0u);

  SimOptions active = passive;
  active.reschedule_policy.slack_threshold = 4;
  active.reschedule_policy.max_reschedules = 1;
  int calls = 0;
  active.reschedule = [&inst, &calls](const PartialExecution& px) {
    ++calls;
    // The monitor fires at the first step with lag > 4: lag = now - 2.
    EXPECT_EQ(px.now, 7);
    EXPECT_TRUE(std::none_of(px.committed.begin(), px.committed.end(),
                             [](char c) { return c != 0; }));
    // o0 is mid-flight toward node 1 (pinned at the leg target); o1 is
    // parked at node 1 since step 2.
    EXPECT_EQ(px.object_at, (std::vector<NodeId>{1, 1}));
    EXPECT_EQ(px.object_free_at, (std::vector<Time>{7, 7}));
    auto next = std::make_unique<Schedule>();
    next->object_order = {{0}, {1, 0}};  // serve T1 while T0 waits for o0
    next->commit_time = {13, 10};
    EXPECT_TRUE(validate(inst, DenseMetric(inst.graph()), *next).ok);
    return next;
  };
  const SimResult a = simulate(inst, m, s, active);
  ASSERT_TRUE(a.ok) << a.summary();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(a.reschedules, 1u);
  EXPECT_EQ(a.realized_makespan, 21);
  EXPECT_LT(a.realized_makespan, p.realized_makespan);
}

// The same splice recorded: the trace must carry exactly one reschedule
// instant and the critical path must tile [0, 21].
TEST(RescheduleDiamond, SpliceIsVisibleInTraceAndPathTiles) {
  const Diamond d;
  InstanceBuilder ib(d.g, 2);
  ib.set_object_home(0, 0);
  ib.set_object_home(1, 3);
  ib.add_transaction(1, {0, 1});
  ib.add_transaction(2, {1});
  const Instance inst = ib.build();
  const DenseMetric m(d.g);
  const Schedule s = Schedule::from_commit_times(inst, {2, 5});

  FaultConfig cfg;
  cfg.scheduled.push_back({0, 1, 0, 20});
  const FaultModel model(cfg);
  SimOptions active;
  active.faults = &model;
  active.recovery.reroute = false;
  active.reschedule_policy.slack_threshold = 4;
  active.reschedule_policy.max_reschedules = 1;
  active.reschedule = [](const PartialExecution&) {
    auto next = std::make_unique<Schedule>();
    next->object_order = {{0}, {1, 0}};
    next->commit_time = {13, 10};
    return next;
  };

  TraceRecorder& rec = TraceRecorder::global();
  rec.set_enabled(false);
  rec.clear();
  rec.set_enabled(true);
  const SimResult a = simulate(inst, m, s, active);
  rec.set_enabled(false);
  ASSERT_TRUE(a.ok) << a.summary();
  ASSERT_EQ(a.realized_makespan, 21);

  const TraceSummary sum = summarize_trace(rec.events());
  EXPECT_EQ(sum.reschedules, 1u);
  EXPECT_TRUE(sum.problems.empty()) << sum.problems.front();
  EXPECT_EQ(sum.makespan, 21);
  EXPECT_EQ(sum.critical_total, 21);
  EXPECT_TRUE(sum.consistent());
}

// --------------------------------------------------- reschedule_from unit

// Rescheduling an untouched execution with the scheduler that produced
// the incumbent projects zero gain, so the guard declines.
TEST(RescheduleFrom, DeclinesWhenNoProjectedGain) {
  const Grid topo(4);
  const DenseMetric m(topo.graph);
  Rng rng(11);
  const Instance inst =
      generate_uniform(topo.graph, {.num_objects = 5, .objects_per_txn = 2},
                       rng);
  const auto sched = make_scheduler("greedy-ff");
  const Schedule s = sched->run(inst, m);

  PartialExecution px;
  px.now = 0;
  px.committed.assign(inst.num_transactions(), 0);
  px.commit_realized.assign(inst.num_transactions(), 0);
  px.object_at.resize(inst.num_objects());
  px.object_free_at.assign(inst.num_objects(), 0);
  px.served.resize(inst.num_objects());
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    px.object_at[o] = inst.object_home(o);
  }
  px.order = s.object_order;
  const auto resched = make_scheduler("greedy-ff");
  EXPECT_EQ(reschedule_from(inst, m, *resched, px), nullptr);
}

TEST(RescheduleFrom, ReturnsNullWhenEverythingCommitted) {
  const Clique topo(4);
  const DenseMetric m(topo.graph);
  Rng rng(3);
  const Instance inst =
      generate_uniform(topo.graph, {.num_objects = 2, .objects_per_txn = 1},
                       rng);
  const auto sched = make_scheduler("greedy-ff");
  const Schedule s = sched->run(inst, m);

  PartialExecution px;
  px.now = s.makespan();
  px.committed.assign(inst.num_transactions(), 1);
  px.commit_realized = s.commit_time;
  px.object_at.resize(inst.num_objects());
  px.object_free_at.assign(inst.num_objects(), px.now);
  px.served.resize(inst.num_objects());
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    px.object_at[o] = inst.object_home(o);
    px.served[o] = s.object_order[o];
  }
  px.order = s.object_order;
  EXPECT_EQ(reschedule_from(inst, m, *sched, px), nullptr);
}

// ----------------------------------------------------------- rw variant

PartialExecution fresh_px(const Instance& inst) {
  PartialExecution px;
  px.committed.assign(inst.num_transactions(), 0);
  px.commit_realized.assign(inst.num_transactions(), 0);
  px.object_at.resize(inst.num_objects());
  px.object_free_at.assign(inst.num_objects(), 0);
  px.served.resize(inst.num_objects());
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    px.object_at[o] = inst.object_home(o);
  }
  return px;
}

// From an untouched snapshot (objects at home, nothing committed) the rw
// restart degenerates to schedule_rw_greedy, so check_rw accepts it.
TEST(RescheduleRw, FreshSnapshotPassesCheckRw) {
  const Grid topo(4);
  const DenseMetric m(topo.graph);
  Rng rng(29);
  const Instance inst =
      generate_uniform(topo.graph, {.num_objects = 6, .objects_per_txn = 2},
                       rng);
  const WriteSets writes = generate_write_sets(inst, 0.5, rng);
  const RwSchedule out = reschedule_rw_from(inst, writes, m, fresh_px(inst));
  EXPECT_EQ(check_rw(inst, writes, m, out, RwPolicy::kMultiVersion), "");
}

// Half-committed snapshot: committed transactions keep their realized
// times and vanish from every writer chain and reader list; the suffix
// lands strictly after the snapshot.
TEST(RescheduleRw, HalfCommittedSuffixComposesWithHistory) {
  const Clique topo(6);
  const DenseMetric m(topo.graph);
  Rng rng(17);
  const Instance inst =
      generate_uniform(topo.graph, {.num_objects = 4, .objects_per_txn = 2},
                       rng);
  const WriteSets writes = generate_write_sets(inst, 0.5, rng);
  const RwSchedule full = schedule_rw_greedy(inst, writes, m, {});
  ASSERT_EQ(check_rw(inst, writes, m, full, RwPolicy::kMultiVersion), "");

  // Commit everything at or below the median commit time; pin each object
  // at the home of its last committed writer.
  std::vector<Time> sorted = full.commit_time;
  std::sort(sorted.begin(), sorted.end());
  const Time cut = sorted[sorted.size() / 2];
  PartialExecution px = fresh_px(inst);
  px.now = cut;
  std::size_t committed = 0;
  for (TxnId t = 0; t < inst.num_transactions(); ++t) {
    if (full.commit_time[t] > cut) continue;
    px.committed[t] = 1;
    px.commit_realized[t] = full.commit_time[t];
    ++committed;
  }
  ASSERT_GT(committed, 0u);
  ASSERT_LT(committed, inst.num_transactions());
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    for (const TxnId t : full.writer_order[o]) {
      if (px.committed[t] == 0) continue;
      if (px.commit_realized[t] >= px.object_free_at[o]) {
        px.object_free_at[o] = px.commit_realized[t];
        px.object_at[o] = inst.txn(t).home;
      }
    }
  }

  const RwSchedule out = reschedule_rw_from(inst, writes, m, px);
  for (TxnId t = 0; t < inst.num_transactions(); ++t) {
    if (px.committed[t] != 0) {
      EXPECT_EQ(out.commit_time[t], full.commit_time[t]) << "T" << t;
    } else {
      EXPECT_GT(out.commit_time[t], px.now) << "T" << t;
    }
  }
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    for (const TxnId t : out.writer_order[o]) {
      EXPECT_EQ(px.committed[t], 0) << "committed writer T" << t
                                    << " in o" << o << "'s chain";
    }
    for (const auto& [reader, source] : out.reader_source[o]) {
      EXPECT_EQ(px.committed[reader], 0)
          << "committed reader T" << reader << " listed for o" << o;
      (void)source;
    }
  }
}

}  // namespace
