// TL2-style optimistic executor: determinism, arrival respect, conflict
// behavior, and the livelock guard.
#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/grid.hpp"
#include "sim/optimistic.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

TEST(Optimistic, CommitsEverythingDeterministically) {
  const Grid g(6);
  const DenseMetric m(g.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      g.graph, {.num_objects = 8, .objects_per_txn = 2}, rng);
  const ArrivalTimes arrival(inst.num_transactions(), 0);

  OptimisticOptions opts;
  opts.seed = 17;
  const OptimisticResult a = run_optimistic(inst, m, arrival, opts);
  const OptimisticResult b = run_optimistic(inst, m, arrival, opts);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.commits, inst.num_transactions());
  EXPECT_EQ(a.commit_time, b.commit_time);
  EXPECT_EQ(a.aborts, b.aborts);
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(Optimistic, RespectsArrivals) {
  const Grid g(5);
  const DenseMetric m(g.graph);
  Rng rng(9);
  const Instance inst = generate_uniform(
      g.graph, {.num_objects = 6, .objects_per_txn = 2}, rng);
  Rng arng(10);
  const ArrivalTimes arrival =
      generate_arrivals(inst.num_transactions(), 50, arng);
  const OptimisticResult r = run_optimistic(inst, m, arrival);
  ASSERT_TRUE(r.ok) << r.error;
  for (TxnId t = 0; t < inst.num_transactions(); ++t) {
    // Attempt starts at the arrival and needs >= 1 step of latency.
    EXPECT_GT(r.commit_time[t], arrival[t]) << "T" << t;
  }
}

TEST(Optimistic, HotspotContentionForcesAborts) {
  // Every transaction validates against object 0's version clock; with
  // simultaneous release most first attempts must collide.
  const Clique c(16);
  const DenseMetric m(c.graph);
  Rng rng(5);
  const Instance inst = generate_hotspot(c.graph, 4, 2, rng);
  const ArrivalTimes arrival(inst.num_transactions(), 0);
  const OptimisticResult r = run_optimistic(inst, m, arrival);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.commits, inst.num_transactions());
  EXPECT_GT(r.aborts, 0u);
  EXPECT_GT(r.wasted_steps, 0);
}

TEST(Optimistic, DisjointTransactionsNeverAbort) {
  const Grid g(4);
  const DenseMetric m(g.graph);
  InstanceBuilder b(g.graph, 4);
  for (TxnId t = 0; t < 4; ++t) {
    b.add_transaction(t, {static_cast<ObjectId>(t)});
    b.set_object_home(t, static_cast<NodeId>(t));
  }
  const Instance inst = b.build();
  const OptimisticResult r = run_optimistic(inst, m, ArrivalTimes(4, 0));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.aborts, 0u);
  EXPECT_EQ(r.wasted_steps, 0);
}

TEST(Optimistic, LivelockGuardReports) {
  const Clique c(4);
  InstanceBuilder b(c.graph, 1);
  b.add_transaction(0, {0});
  b.add_transaction(1, {0});
  b.add_transaction(2, {0});
  b.set_object_home(0, 0);
  const Instance inst = b.build();
  const DenseMetric m(c.graph);
  OptimisticOptions opts;
  opts.max_retries = 0;  // any abort is fatal
  const OptimisticResult r = run_optimistic(inst, m, ArrivalTimes(3, 0), opts);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());
}

TEST(Optimistic, BackoffSeedChangesContentionOutcome) {
  const Clique c(16);
  const DenseMetric m(c.graph);
  Rng rng(5);
  const Instance inst = generate_hotspot(c.graph, 4, 2, rng);
  const ArrivalTimes arrival(inst.num_transactions(), 0);
  OptimisticOptions a, b;
  a.seed = 1;
  b.seed = 2;
  const OptimisticResult ra = run_optimistic(inst, m, arrival, a);
  const OptimisticResult rb = run_optimistic(inst, m, arrival, b);
  ASSERT_TRUE(ra.ok && rb.ok);
  // Different backoff draws almost surely land on different timelines.
  EXPECT_NE(ra.commit_time, rb.commit_time);
}

}  // namespace
}  // namespace dtm
