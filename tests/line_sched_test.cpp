// Tests for the §4 Line scheduler (Theorem 2: asymptotically optimal).
#include <gtest/gtest.h>

#include <tuple>

#include "core/generators.hpp"
#include "lb/bounds.hpp"
#include "sched/baseline.hpp"
#include "sched/line.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

TEST(LineScheduler, RejectsForeignGraphs) {
  const Line a(9), b(8);
  Rng rng(1);
  const Instance inst =
      generate_uniform(a.graph, {.num_objects = 3, .objects_per_txn = 1}, rng);
  const DenseMetric m(b.graph);
  LineScheduler sched(b);
  EXPECT_THROW(sched.run(inst, m), Error);
}

TEST(LineScheduler, AcceptsStructurallyIdenticalGraphs) {
  // A rebuilt line of the same shape passes the structural check — the
  // registry's recovered topologies (make_scheduler_for) rely on this.
  const Line a(8), b(8);
  Rng rng(1);
  const Instance inst =
      generate_uniform(a.graph, {.num_objects = 3, .objects_per_txn = 1}, rng);
  const DenseMetric m(b.graph);
  LineScheduler sched(b);
  EXPECT_NO_THROW(sched.run(inst, m));
}

TEST(LineScheduler, SingleSharedObjectSweeps) {
  // Every node wants o0; ℓ = n-1; the schedule sweeps once (one phase).
  const Line line(8);
  InstanceBuilder b(line.graph, 1);
  for (NodeId v = 0; v < 8; ++v) b.add_transaction(v, {0});
  b.set_object_home(0, 0);
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  LineScheduler sched(line);
  const Schedule s = test::run_and_check(sched, inst, m);
  EXPECT_EQ(sched.last_ell(), 7);
  // z = 7 so nodes 0..6 are subline 0 (phase 1), node 7 subline 1 (phase 2);
  // either way the total stays within 4ℓ-2.
  EXPECT_LE(s.makespan(), 4 * 7 - 2);
  const InstanceBounds lb = compute_bounds(inst, m);
  EXPECT_GE(s.makespan(), lb.makespan_lb);
}

TEST(LineScheduler, IndependentTransactionsRunInOneStep) {
  const Line line(6);
  InstanceBuilder b(line.graph, 6);
  for (NodeId v = 0; v < 6; ++v) {
    b.add_transaction(v, {static_cast<ObjectId>(v)});
    b.set_object_home(static_cast<ObjectId>(v), v);
  }
  const Instance inst = b.build();
  const DenseMetric m(line.graph);
  LineScheduler sched(line);
  const Schedule s = test::run_and_check(sched, inst, m);
  // ℓ = 0 -> z = 1, every node its own subline; makespan 1 (phase 1) or 2.
  EXPECT_LE(s.makespan(), 2);
}

class LineSchedulerSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LineSchedulerSweep, FeasibleAndWithinPaperBound) {
  const auto [n, k, seed] = GetParam();
  const Line line(static_cast<std::size_t>(n));
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Instance inst = generate_uniform(
      line.graph,
      {.num_objects = 8, .objects_per_txn = static_cast<std::size_t>(k)},
      rng);
  const DenseMetric m(line.graph);
  LineScheduler sched(line);
  const Schedule s = test::run_and_check(sched, inst, m);
  const Weight ell = sched.last_ell();
  // Theorem 2: duration O(ℓ) when objects start at a requester (which
  // generate_uniform's default placement guarantees); the implementation's
  // exact-period accounting stays within 4ℓ.
  EXPECT_LE(s.makespan(), std::max<Time>(4 * ell, 2)) << "ell=" << ell;
  // ℓ is itself a lower bound (the walk of the critical object).
  const InstanceBounds lb = compute_bounds(inst, m);
  EXPECT_GE(s.makespan(), lb.makespan_lb);
}

INSTANTIATE_TEST_SUITE_P(Sweep, LineSchedulerSweep,
                         ::testing::Combine(::testing::Values(5, 16, 33, 64),
                                            ::testing::Values(1, 2, 4),
                                            ::testing::Range(0, 3)));

TEST(LineScheduler, NearOptimalOnTinyInstances) {
  // Against the exact optimum the line schedule stays within factor 4ish.
  const Line line(7);
  const DenseMetric m(line.graph);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    const Instance inst = generate_uniform(
        line.graph,
        {.num_objects = 3, .objects_per_txn = 1}, rng);
    LineScheduler sched(line);
    ExactScheduler exact;
    const Schedule s = test::run_and_check(sched, inst, m);
    const Schedule opt = test::run_and_check(exact, inst, m);
    ASSERT_GE(opt.makespan(), 1);
    EXPECT_LE(s.makespan(), 6 * opt.makespan() + 4) << inst.describe();
  }
}

TEST(LineScheduler, HandlesEmptyAndSingle) {
  const Line line(4);
  {
    InstanceBuilder b(line.graph, 1);
    const Instance inst = b.build();
    const DenseMetric m(line.graph);
    LineScheduler sched(line);
    const Schedule s = sched.run(inst, m);
    EXPECT_EQ(s.makespan(), 0);
  }
  {
    InstanceBuilder b(line.graph, 1);
    b.add_transaction(2, {0});
    b.set_object_home(0, 2);
    const Instance inst = b.build();
    const DenseMetric m(line.graph);
    LineScheduler sched(line);
    const Schedule s = test::run_and_check(sched, inst, m);
    EXPECT_LE(s.makespan(), 3);
  }
}

}  // namespace
}  // namespace dtm
