// Equivalence tests for the two-pass CSR dependency-graph assembler: the
// CSR form must encode exactly the conflict relation a naive set-based
// construction produces, with distances matching the metric, on random
// instances and on subset restrictions.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/generators.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/dependency_graph.hpp"
#include "util/rng.hpp"

namespace dtm {
namespace {

/// Reference conflict relation: neighbor sets per local index, built the
/// obvious way (no CSR, no batching).
std::vector<std::set<TxnId>> naive_conflicts(const Instance& inst,
                                             const std::vector<TxnId>& txns) {
  std::vector<TxnId> local(inst.num_transactions(), kInvalidTxn);
  for (std::size_t i = 0; i < txns.size(); ++i) {
    local[txns[i]] = static_cast<TxnId>(i);
  }
  std::vector<std::set<TxnId>> adj(txns.size());
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    std::vector<TxnId> members;
    for (TxnId t : inst.requesters(o)) {
      if (local[t] != kInvalidTxn) members.push_back(local[t]);
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        adj[members[i]].insert(members[j]);
        adj[members[j]].insert(members[i]);
      }
    }
  }
  return adj;
}

void expect_matches_naive(const Instance& inst, const Metric& metric,
                          const DependencyGraph& h,
                          const std::vector<TxnId>& txns) {
  ASSERT_EQ(h.txns, txns);
  ASSERT_EQ(h.offsets.size(), txns.size() + 1);
  const auto adj = naive_conflicts(inst, txns);
  std::size_t expect_max_degree = 0;
  Weight expect_max_weight = 0;
  for (std::size_t i = 0; i < txns.size(); ++i) {
    const auto nbrs = h.neighbors(i);
    ASSERT_EQ(nbrs.size(), adj[i].size()) << "local node " << i;
    ASSERT_EQ(h.degree(i), adj[i].size());
    // CSR neighbor lists come out sorted and deduplicated.
    std::size_t k = 0;
    for (TxnId expected : adj[i]) {  // std::set iterates ascending
      EXPECT_EQ(nbrs[k].neighbor, expected);
      EXPECT_EQ(nbrs[k].weight,
                metric.distance(inst.txn(txns[i]).home,
                                inst.txn(txns[expected]).home));
      expect_max_weight = std::max(expect_max_weight, nbrs[k].weight);
      ++k;
    }
    expect_max_degree = std::max(expect_max_degree, adj[i].size());
  }
  EXPECT_EQ(h.max_degree, expect_max_degree);
  EXPECT_EQ(h.max_edge_weight, expect_max_weight);
}

TEST(DependencyGraphCsr, MatchesNaiveOnRandomInstances) {
  const Grid topo(6);
  const DenseMetric metric(topo.graph);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Instance inst = generate_uniform(
        topo.graph, {.num_objects = 12, .objects_per_txn = 3}, rng);
    std::vector<TxnId> all(inst.num_transactions());
    for (TxnId t = 0; t < all.size(); ++t) all[t] = t;
    expect_matches_naive(inst, metric, build_dependency_graph(inst, metric),
                         all);
  }
}

TEST(DependencyGraphCsr, MatchesNaiveOnSubsets) {
  const Clique topo(24);
  const DenseMetric metric(topo.graph);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    const Instance inst = generate_uniform(
        topo.graph, {.num_objects = 6, .objects_per_txn = 2}, rng);
    // Every third transaction, so plenty of requester pairs fall outside
    // the subset and must be skipped.
    std::vector<TxnId> subset;
    for (TxnId t = 0; t < inst.num_transactions(); t += 3) {
      subset.push_back(t);
    }
    expect_matches_naive(inst, metric,
                         build_dependency_graph(inst, metric, subset), subset);
  }
}

TEST(DependencyGraphCsr, ParallelEdgesCollapseToOne) {
  // Two transactions sharing several objects must still produce a single
  // CSR edge each way.
  const Clique topo(4);
  const DenseMetric metric(topo.graph);
  InstanceBuilder b(topo.graph, /*num_objects=*/3);
  b.set_object_home(0, 0);
  b.set_object_home(1, 1);
  b.set_object_home(2, 2);
  b.add_transaction(1, {0, 1, 2});
  b.add_transaction(2, {0, 1, 2});
  const Instance inst = b.build();
  const DependencyGraph h = build_dependency_graph(inst, metric);
  EXPECT_EQ(h.degree(0), 1u);
  EXPECT_EQ(h.degree(1), 1u);
  EXPECT_EQ(h.edges.size(), 2u);
  EXPECT_EQ(h.neighbors(0)[0].neighbor, 1u);
  EXPECT_EQ(h.neighbors(1)[0].neighbor, 0u);
}

TEST(DependencyGraphCsr, EmptyAndConflictFreeInstances) {
  const Clique topo(4);
  const DenseMetric metric(topo.graph);
  InstanceBuilder b(topo.graph, /*num_objects=*/2);
  b.set_object_home(1, 1);
  b.add_transaction(0, {0});
  b.add_transaction(3, {1});
  const Instance inst = b.build();
  const DependencyGraph h = build_dependency_graph(inst, metric);
  EXPECT_EQ(h.size(), 2u);
  EXPECT_EQ(h.edges.size(), 0u);
  EXPECT_EQ(h.max_degree, 0u);
  EXPECT_EQ(h.max_edge_weight, 0);
  EXPECT_EQ(h.weighted_degree(), 0);
}

}  // namespace
}  // namespace dtm
