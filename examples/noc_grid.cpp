// Network-on-chip scenario (§1: "grid graphs represent systems on chips or
// multi-cores, e.g. XMOS, Intel Xeon Phi").
//
// A 16x16 mesh of cores runs one transaction each against a pool of shared
// cache lines (the mobile objects). The example compares the §5 subgrid
// scheduler against the plain §2.3 greedy schedule and a serial baseline,
// then prints the first steps of the winning schedule's event trace so you
// can see objects hopping between cores.
#include <iostream>

#include "core/generators.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/grid.hpp"
#include "lb/bounds.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace dtm;

  const std::size_t side = 16;
  const Grid topo(side);
  const DenseMetric metric(topo.graph);

  Rng rng(7);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 32, .objects_per_txn = 2}, rng);
  const InstanceBounds lb = compute_bounds(inst, metric);

  std::cout << "NoC: " << side << "x" << side << " mesh, "
            << inst.num_transactions() << " transactions over "
            << inst.num_objects() << " shared cache lines\n"
            << "certified makespan lower bound: " << lb.makespan_lb << "\n\n";

  Table table({"scheduler", "makespan", "ratio", "communication"});
  Schedule best;
  Time best_makespan = kInfiniteWeight;

  auto evaluate = [&](Scheduler& sched) {
    const Schedule s = sched.run(inst, metric);
    DTM_REQUIRE(validate(inst, metric, s).ok,
                sched.name() << " produced an infeasible schedule");
    const ScheduleMetrics sm = compute_metrics(inst, metric, s);
    table.add_row(sched.name(), static_cast<double>(sm.makespan),
                  static_cast<double>(sm.makespan) /
                      static_cast<double>(lb.makespan_lb),
                  static_cast<double>(sm.communication));
    if (sm.makespan < best_makespan) {
      best_makespan = sm.makespan;
      best = s;
    }
  };

  // The registry recovers the 16x16 mesh from the instance's graph, so the
  // subgrid schedulers need no hand-passed topology.
  for (const char* name : {"grid", "grid-ff", "greedy-compact", "serial"}) {
    const auto sched = make_scheduler_for(inst, name, 1);
    evaluate(*sched);
  }
  table.print(std::cout);

  // Trace the first dozen events of the best schedule.
  SimOptions opts;
  opts.record_events = true;
  const SimResult sim = simulate(inst, metric, best, opts);
  DTM_REQUIRE(sim.ok, "simulation failed: " << sim.summary());
  std::cout << "\nfirst events of the best schedule (makespan "
            << sim.realized_makespan << "):\n";
  std::size_t shown = 0;
  for (const SimEvent& e : sim.events) {
    if (shown++ >= 14) break;
    std::cout << "  t=" << e.time << "  ";
    switch (e.kind) {
      case SimEvent::Kind::kDepart:
        std::cout << "o" << e.object << " departs core ("
                  << topo.row_of(e.node) << ',' << topo.col_of(e.node) << ")";
        break;
      case SimEvent::Kind::kArrive:
        std::cout << "o" << e.object << " arrives at core ("
                  << topo.row_of(e.node) << ',' << topo.col_of(e.node) << ")";
        break;
      case SimEvent::Kind::kCommit:
        std::cout << "T" << e.txn << " commits at core ("
                  << topo.row_of(e.node) << ',' << topo.col_of(e.node) << ")";
        break;
      case SimEvent::Kind::kHop:
        std::cout << "o" << e.object << " hops";
        break;
      case SimEvent::Kind::kNone:
        break;
    }
    std::cout << "\n";
  }
  return 0;
}
