// dtm_cli — generate / schedule / inspect DTM workloads from the shell.
//
// Examples:
//   dtm_cli --topology grid --n 12 --w 16 --k 2 --scheduler auto --seed 7
//   dtm_cli --topology cluster --alpha 8 --beta 8 --gamma 16
//           --workload cluster-spread --sigma 4 --scheduler cluster-best
//   dtm_cli --topology clique --n 64 --scheduler greedy-ff --csv out.csv
//           --save-instance inst.txt --save-schedule sched.txt
//
// `--scheduler auto` picks the paper's specialized algorithm for the
// chosen topology; any registry name (sched/registry.hpp) works as well —
// topology-agnostic ("greedy-ff", "serial", ...) and topology-specific
// ("line", "grid", "cluster-best", "star-random", ...) — plus the online
// extras "online-fifo" and "online-batch".
//
// The --fault-* flags execute the planned schedule on a faulty network
// (sim/faults.hpp) and report the realized makespan inflation:
//   dtm_cli --topology grid --n 8 --fault-rate 0.05 --loss-rate 0.01
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/generators.hpp"
#include "core/io.hpp"
#include "core/metrics.hpp"
#include "core/online.hpp"
#include "core/validate.hpp"
#include "graph/analytic_metric.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/butterfly.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/hypercube.hpp"
#include "graph/topologies/line.hpp"
#include "graph/topologies/star.hpp"
#include "lb/bounds.hpp"
#include "sched/online.hpp"
#include "sched/registry.hpp"
#include "sched/reschedule.hpp"
#include "sim/capacity_sim.hpp"
#include "sim/congestion.hpp"
#include "sim/optimistic.hpp"
#include "sim/runtime.hpp"
#include "sim/simulator.hpp"
#include "util/args.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/metrics.hpp"
#include "util/telemetry.hpp"
#include "util/trace.hpp"

namespace {

using namespace dtm;

/// Owns whichever topology was requested plus its specialized scheduler.
struct TopologyBundle {
  std::string kind;
  std::unique_ptr<Clique> clique;
  std::unique_ptr<Line> line;
  std::unique_ptr<Grid> grid;
  std::unique_ptr<ClusterGraph> cluster;
  std::unique_ptr<Hypercube> hypercube;
  std::unique_ptr<Butterfly> butterfly;
  std::unique_ptr<Star> star;

  const Graph& graph() const {
    if (clique) return clique->graph;
    if (line) return line->graph;
    if (grid) return grid->graph;
    if (cluster) return cluster->graph;
    if (hypercube) return hypercube->graph;
    if (butterfly) return butterfly->graph;
    return star->graph;
  }
};

TopologyBundle build_topology(const ArgParser& args) {
  TopologyBundle b;
  b.kind = args.get("topology", "grid");
  const auto n = static_cast<std::size_t>(args.get_int("n", 8));
  if (b.kind == "clique") {
    b.clique = std::make_unique<Clique>(n);
  } else if (b.kind == "line") {
    b.line = std::make_unique<Line>(n);
  } else if (b.kind == "grid") {
    b.grid = std::make_unique<Grid>(n);
  } else if (b.kind == "cluster") {
    b.cluster = std::make_unique<ClusterGraph>(
        static_cast<std::size_t>(args.get_int("alpha", 4)),
        static_cast<std::size_t>(args.get_int("beta", 8)),
        args.get_int("gamma", 16));
  } else if (b.kind == "hypercube") {
    b.hypercube =
        std::make_unique<Hypercube>(static_cast<std::size_t>(args.get_int("dim", 5)));
  } else if (b.kind == "butterfly") {
    b.butterfly =
        std::make_unique<Butterfly>(static_cast<std::size_t>(args.get_int("dim", 3)));
  } else if (b.kind == "star") {
    b.star = std::make_unique<Star>(
        static_cast<std::size_t>(args.get_int("alpha", 4)),
        static_cast<std::size_t>(args.get_int("beta", 8)));
  } else {
    throw Error("unknown --topology '" + b.kind +
                "' (clique|line|grid|cluster|hypercube|butterfly|star)");
  }
  return b;
}

Instance build_workload(const ArgParser& args, const TopologyBundle& topo,
                        Rng& rng) {
  const std::string workload = args.get("workload", "uniform");
  const auto w = static_cast<std::size_t>(args.get_int("w", 12));
  const auto k = static_cast<std::size_t>(args.get_int("k", 2));
  if (workload == "uniform") {
    return generate_uniform(topo.graph(),
                            {.num_objects = w, .objects_per_txn = k}, rng);
  }
  if (workload == "hotspot") {
    return generate_hotspot(topo.graph(), w, k, rng);
  }
  if (workload == "cluster-local") {
    DTM_REQUIRE(topo.cluster != nullptr,
                "--workload cluster-local needs --topology cluster");
    return generate_cluster_local(*topo.cluster, w, k, rng);
  }
  if (workload == "cluster-spread") {
    DTM_REQUIRE(topo.cluster != nullptr,
                "--workload cluster-spread needs --topology cluster");
    return generate_cluster_spread(
        *topo.cluster, w, k,
        static_cast<std::size_t>(args.get_int("sigma", 2)), rng);
  }
  if (workload == "ray-local") {
    DTM_REQUIRE(topo.star != nullptr,
                "--workload ray-local needs --topology star");
    return generate_star_ray_local(*topo.star, w, k, rng);
  }
  throw Error("unknown --workload '" + workload +
              "' (uniform|hotspot|cluster-local|cluster-spread|ray-local)");
}

std::unique_ptr<Scheduler> build_scheduler(const ArgParser& args,
                                           const TopologyBundle& topo,
                                           const Instance& inst,
                                           std::uint64_t seed) {
  std::string name = args.get("scheduler", "auto");
  if (name == "auto") {
    if (topo.line) name = "line";
    else if (topo.grid) name = "grid";
    else if (topo.cluster) name = "cluster";
    else if (topo.star) name = "star";
    else name = "greedy-paper";
  }
  // Online schedulers are stateful CLI extras the registry doesn't cover.
  if (name == "online-fifo") return std::make_unique<OnlineFifoScheduler>();
  if (name == "online-batch") {
    OnlineBatchOptions opts;
    opts.window = args.get_int("window", 16);
    return std::make_unique<OnlineBatchScheduler>(opts);
  }
  // Everything else — topology-agnostic and topology-specific names alike —
  // goes through the registry, which recovers the topology from the
  // instance's graph (so "line" on --topology grid fails with a clear
  // error).
  return make_scheduler_for(inst, name, seed);
}

/// --metric picks the distance oracle. Unset keeps make_metric's historic
/// size-based choice (dense up to 4096 nodes, lazy beyond); "auto" prefers
/// the closed-form AnalyticMetric when the graph is recognized as a
/// structured family, falling back to LazyMetric on generic graphs.
std::unique_ptr<Metric> build_metric(const ArgParser& args, const Graph& g) {
  const std::string mode = args.get("metric", "");
  if (mode.empty()) return make_metric(g);
  if (mode == "dense") return std::make_unique<DenseMetric>(g);
  if (mode == "lazy") return std::make_unique<LazyMetric>(g);
  if (mode == "auto") return make_auto_metric(g);
  throw Error("unknown --metric '" + mode + "' (dense|lazy|auto)");
}

/// Parses the --fault-* flags into a fault oracle; inactive (nullopt) when
/// every rate is 0 so the reliable simulate() path stays in charge.
std::optional<FaultModel> build_fault_model(const ArgParser& args,
                                            std::uint64_t seed) {
  FaultConfig fc;
  fc.link_outage_rate = std::stod(args.get("fault-rate", "0"));
  fc.outage_duration = args.get_int("fault-duration", fc.outage_duration);
  fc.slowdown_rate = std::stod(args.get("slowdown-rate", "0"));
  fc.slowdown_factor = args.get_int("slowdown-factor", fc.slowdown_factor);
  fc.loss_rate = std::stod(args.get("loss-rate", "0"));
  fc.window = args.get_int("fault-window", fc.window);
  fc.seed = static_cast<std::uint64_t>(
      args.get_int("fault-seed", static_cast<std::int64_t>(seed)));
  FaultModel model(std::move(fc));
  if (!model.active()) return std::nullopt;
  return model;
}

void warn_unknown_flags(const ArgParser& args) {
  const auto unknown = args.unknown_flags();
  if (!unknown.empty()) {
    std::cerr << "warning: unused flags:";
    for (const auto& f : unknown) std::cerr << " --" << f;
    std::cerr << '\n';
  }
}

/// Streaming mode (--arrival-rate / --arrival-model / --optimistic):
/// transactions arrive continually instead of existing up front. The
/// window-batched StreamingRuntime schedules them (sim/runtime.hpp); with
/// --optimistic the same stream runs under the TL2-style optimistic
/// executor instead, so the two execution models are directly comparable.
int run_streaming(const ArgParser& args, const TopologyBundle& topo,
                  const Metric& metric, std::uint64_t seed) {
  // --metrics-out[=FILE] turns the (disabled-by-default) MetricsRegistry on
  // for this run and writes the dtm-metrics-v1 JSONL afterwards (latency
  // histograms, per-window samples; stream_report reads it). Bare flag
  // defaults to metrics.jsonl.
  const bool metrics_requested = args.has("metrics-out");
  MetricsRegistry& mreg = MetricsRegistry::global();
  if (metrics_requested) {
    mreg.reset();
    mreg.set_enabled(true);
  }
  const auto write_metrics = [&] {
    if (!metrics_requested) return;
    const std::string path = args.get_optional("metrics-out", "metrics.jsonl");
    std::ofstream out(path);
    DTM_REQUIRE(out.good(), "cannot open --metrics-out file " << path);
    out << mreg.snapshot().to_jsonl();
    std::cout << "wrote metrics to " << path << '\n';
  };

  const ArrivalModel model =
      parse_arrival_model(args.get("arrival-model", "poisson"));
  ArrivalStreamOptions stream;
  stream.num_txns = static_cast<std::size_t>(args.get_int("txns", 256));
  stream.num_objects = static_cast<std::size_t>(args.get_int("w", 12));
  stream.objects_per_txn = static_cast<std::size_t>(args.get_int("k", 2));
  stream.rate = std::stod(args.get("arrival-rate", "1"));
  stream.burst_size =
      static_cast<std::size_t>(args.get_int("burst", stream.burst_size));
  auto src = make_arrival_source(model, topo.graph(), stream, seed);

  if (args.has("optimistic")) {
    // Materialize the identical stream into an instance + arrival vector
    // (streams revisit nodes, hence the shared-homes opt-in).
    InstanceBuilder b(topo.graph(), stream.num_objects);
    b.allow_shared_homes();
    ArrivalTimes arrival;
    ArrivingTxn t;
    while (src->next(t)) {
      b.add_transaction(t.home, t.objects);
      arrival.push_back(t.arrival);
    }
    const std::vector<NodeId> homes =
        StreamingRuntime::spread_homes(topo.graph(), stream.num_objects);
    for (ObjectId o = 0; o < stream.num_objects; ++o) {
      b.set_object_home(o, homes[o]);
    }
    OptimisticOptions opts;
    opts.seed = seed;
    const OptimisticResult r =
        run_optimistic(b.build(), metric, arrival, opts);
    DTM_REQUIRE(r.ok, "optimistic execution failed: " << r.error);
    Table table({"executor", "txns", "commits", "aborts", "wasted steps",
                 "makespan", "throughput"});
    table.add_row("tl2-optimistic", arrival.size(), r.commits, r.aborts,
                  static_cast<double>(r.wasted_steps),
                  static_cast<double>(r.makespan), r.throughput);
    table.print(std::cout);
    write_metrics();
    warn_unknown_flags(args);
    return 0;
  }

  StreamingRuntimeOptions opts;
  opts.window = args.get_int("window", opts.window);
  opts.max_live_admitted =
      static_cast<std::size_t>(args.get_int("max-live", 0));
  opts.shards = static_cast<std::size_t>(args.get_int("shards", 1));
  opts.admission.policy = parse_admission_policy(args.get("admission", "fixed"));
  StreamingRuntime rt(
      topo.graph(), metric,
      StreamingRuntime::spread_homes(topo.graph(), stream.num_objects), opts);
  rt.ingest_all(*src);
  const StreamStats& st = rt.drain();
  const auto vr =
      validate_online(rt.materialize(), metric, rt.arrivals(), rt.schedule());
  DTM_REQUIRE(vr.ok, "streaming schedule failed validation:\n"
                         << vr.summary());
  Table table({"executor", "txns", "committed", "windows", "deferrals",
               "peak backlog", "mean backlog", "makespan", "throughput"});
  table.add_row("stream-batch", st.arrived, st.committed, st.windows,
                st.deferrals, st.peak_backlog, st.mean_backlog,
                static_cast<double>(st.makespan), st.throughput);
  table.print(std::cout);
  if (opts.shards > 1) {
    const ShardLoadStats& sh = rt.shard_stats();
    std::cout << "shards: " << sh.num_shards << " (" << sh.scheme
              << " partition), local txns " << sh.local_txns << ", cross "
              << sh.cross_txns << ", fixup-colored " << sh.fixup_txns
              << ", peak shard batch " << sh.peak_shard_members << '\n';
  }
  if (opts.admission.policy != AdmissionPolicy::kFixed) {
    const AdmissionController& ac = rt.admission();
    std::cout << "admission: " << ac.name() << ", final quota " << ac.quota()
              << ", raises " << ac.raises() << ", cuts " << ac.cuts() << '\n';
  }
  write_metrics();
  warn_unknown_flags(args);
  return 0;
}

int run(const ArgParser& args, const std::string& invocation) {
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto trials = static_cast<int>(args.get_int("trials", 1));

  // --trace-out records trial 0 (the seeded, reproducible one) and writes a
  // Chrome trace-event file (or deterministic JSONL) after the run. Only
  // one execution per run is recorded to keep a single coherent span tree:
  // with --capacity that is the capacity replay (whose makespan is the one
  // printed), otherwise the plain trial-0 run.
  const bool tracing = args.has("trace-out");
  const bool trace_replay = tracing && args.has("capacity");
  const std::string trace_path = args.get("trace-out", "");
  const std::string trace_format = args.get("trace-format", "chrome");
  DTM_REQUIRE(trace_format == "chrome" || trace_format == "jsonl",
              "unknown --trace-format '" << trace_format
                                         << "' (chrome|jsonl)");
  TraceRecorder& recorder = TraceRecorder::global();
  if (tracing) {
    DTM_REQUIRE(!trace_path.empty(), "--trace-out needs a file path");
    recorder.clear();
    recorder.set_provenance({
        {"invocation", invocation},
        {"scheduler", args.get("scheduler", "auto")},
        {"seed", std::to_string(seed)},
        {"topology", args.get("topology", "grid")},
        {"workload", args.get("workload", "uniform")},
    });
    recorder.set_enabled(true);
  }

  const TopologyBundle topo = build_topology(args);
  const auto metric = build_metric(args, topo.graph());
  if (args.has("arrival-rate") || args.has("arrival-model") ||
      args.has("optimistic")) {
    return run_streaming(args, topo, *metric, seed);
  }
  const std::optional<FaultModel> faults = build_fault_model(args, seed);
  SimOptions sim_opts;
  if (faults) sim_opts.faults = &*faults;

  // --reschedule[=NAME] splices replacement schedules in mid-run whenever
  // the realized lag exceeds --slack-threshold (sched/reschedule.hpp).
  // Bare --reschedule reuses the --scheduler name; online-* schedulers are
  // stateful and cannot restart from partial state, so they are rejected.
  const bool resched = args.has("reschedule");
  std::string resched_name;
  if (resched) {
    resched_name =
        args.get_optional("reschedule", args.get("scheduler", "auto"));
    if (resched_name == "auto") {
      if (topo.line) resched_name = "line";
      else if (topo.grid) resched_name = "grid";
      else if (topo.cluster) resched_name = "cluster";
      else if (topo.star) resched_name = "star";
      else resched_name = "greedy-paper";
    }
    DTM_REQUIRE(resched_name.rfind("online-", 0) != 0,
                "--reschedule cannot use online schedulers (got '"
                    << resched_name << "')");
    sim_opts.reschedule_policy.slack_threshold = args.get_int(
        "slack-threshold", sim_opts.reschedule_policy.slack_threshold);
  }

  Table table({"trial", "scheduler", "txns", "makespan", "LB", "ratio",
               "communication", "peak link load"});
  std::optional<CsvWriter> csv;
  if (args.has("csv")) {
    csv.emplace(args.get("csv", ""),
                std::vector<std::string>{"trial", "scheduler", "txns",
                                         "makespan", "lb", "ratio",
                                         "communication", "peak_load"});
  }

  for (int trial = 0; trial < trials; ++trial) {
    Rng rng(seed + static_cast<std::uint64_t>(trial));
    const Instance inst = build_workload(args, topo, rng);
    auto sched = build_scheduler(args, topo, inst,
                                 seed + static_cast<std::uint64_t>(trial));
    const Schedule schedule = sched->run(inst, *metric);

    const ValidationResult vr = validate(inst, *metric, schedule);
    DTM_REQUIRE(vr.ok, "scheduler produced infeasible schedule:\n"
                           << vr.summary());
    if (resched) {
      // Rebuilt per trial: the hook captures this trial's instance.
      sim_opts.reschedule = make_rescheduler(
          inst, *metric, resched_name,
          seed + static_cast<std::uint64_t>(trial));
    }
    // With --capacity the replay below is the traced execution; keep the
    // plain run off the recorder so the trace matches the printed makespan.
    const bool pause_plain = trace_replay && recorder.enabled();
    if (pause_plain) recorder.set_enabled(false);
    const SimResult sim = simulate(inst, *metric, schedule, sim_opts);
    if (pause_plain) recorder.set_enabled(true);
    DTM_REQUIRE(sim.ok, "simulation failed:\n" << sim.summary());
    if (resched && sim.reschedules > 0) {
      std::cout << "trial " << trial << " reschedules: " << sim.reschedules
                << " (realized makespan " << sim.realized_makespan << ")\n";
    }
    if (faults) {
      std::cout << "trial " << trial << " faults: planned makespan "
                << sim.planned_makespan << " -> realized "
                << sim.realized_makespan << " (injected "
                << sim.faults.injected << ", retries " << sim.faults.retries
                << ", reroutes " << sim.faults.reroutes
                << ", degraded commits " << sim.faults.degraded_commits
                << ")\n";
    }

    const InstanceBounds lb = compute_bounds(inst, *metric);
    const ScheduleMetrics sm = compute_metrics(inst, *metric, schedule);
    const CongestionReport cong = analyze_congestion(inst, *metric, schedule);
    if (args.has("capacity")) {
      // The --fault-* flags compose with --capacity: the replay runs the
      // visit orders on bounded FIFO links *and* the faulty network at once.
      // This replay is the recorded execution when tracing (its makespan is
      // the printed one); the plain run above was kept off the recorder.
      const auto cap = static_cast<std::size_t>(args.get_int("capacity", 1));
      CapacitySimOptions cap_opts;
      cap_opts.capacity = cap;
      if (faults) cap_opts.faults = &*faults;
      const CapacitySimResult replay =
          simulate_with_capacity(inst, *metric, schedule, cap_opts);
      DTM_REQUIRE(replay.ok, "capacity replay failed: " << replay.error);
      std::cout << "capacity-" << cap << " replay: makespan "
                << replay.makespan << ", queue wait "
                << replay.total_queue_wait << ", max queue "
                << replay.max_queue_length;
      if (faults) {
        std::cout << " (injected " << replay.faults.injected << ", retries "
                  << replay.faults.retries << ", reroutes "
                  << replay.faults.reroutes << ")";
      }
      std::cout << "\n";
    }
    const double ratio = static_cast<double>(sm.makespan) /
                         static_cast<double>(std::max<Time>(lb.makespan_lb, 1));
    table.add_row(trial, sched->name(), inst.num_transactions(),
                  static_cast<double>(sm.makespan),
                  static_cast<double>(lb.makespan_lb), ratio,
                  static_cast<double>(sm.communication), cong.peak_load);
    if (csv) {
      csv->write_row({std::to_string(trial), sched->name(),
                      std::to_string(inst.num_transactions()),
                      std::to_string(sm.makespan),
                      std::to_string(lb.makespan_lb), Table::format_cell(ratio),
                      std::to_string(sm.communication),
                      std::to_string(cong.peak_load)});
    }

    if (trial == 0) {
      if (args.has("save-graph")) {
        std::ofstream out(args.get("save-graph", ""));
        write_graph(out, topo.graph());
      }
      if (args.has("save-instance")) {
        std::ofstream out(args.get("save-instance", ""));
        write_instance(out, inst);
      }
      if (args.has("save-schedule")) {
        std::ofstream out(args.get("save-schedule", ""));
        write_schedule(out, schedule);
      }
      // Only trial 0 is recorded; keep later trials off the trace.
      if (tracing) recorder.set_enabled(false);
    }
  }
  table.print(std::cout);

  if (tracing) {
    std::ofstream out(trace_path);
    DTM_REQUIRE(out.good(), "cannot open --trace-out file " << trace_path);
    out << (trace_format == "jsonl" ? recorder.to_jsonl()
                                    : recorder.to_chrome_json());
    std::cout << "wrote " << recorder.size() << "-event " << trace_format
              << " trace to " << trace_path << '\n';
  }

  if (args.has("telemetry")) {
    // Bare --telemetry dumps to stdout; --telemetry=FILE (or
    // `--telemetry FILE`) writes the file.
    const std::string json = TelemetryRegistry::global().snapshot().to_json();
    const std::string path = args.get_optional("telemetry", "-");
    if (path == "-") {
      std::cout << "\ntelemetry:\n" << json << '\n';
    } else {
      std::ofstream out(path);
      DTM_REQUIRE(out.good(), "cannot open --telemetry file " << path);
      out << json << '\n';
      std::cout << "wrote telemetry to " << path << '\n';
    }
  }

  warn_unknown_flags(args);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const ArgParser args(argc, argv);
    if (args.has("list-schedulers")) {
      // The registry is the source of truth; topology-specific names need
      // an instance whose graph structurally matches. online-* are
      // stateful CLI extras constructed outside the registry.
      for (const std::string& name : dtm::registered_scheduler_names()) {
        std::cout << name << '\n';
      }
      std::cout << "online-fifo\nonline-batch\n";
      return 0;
    }
    if (args.has("help")) {
      std::cout <<
          "usage: dtm_cli [--topology clique|line|grid|cluster|hypercube|"
          "butterfly|star]\n"
          "  [--n N] [--alpha A --beta B --gamma G] [--dim D]\n"
          "  [--workload uniform|hotspot|cluster-local|cluster-spread|"
          "ray-local] [--w W] [--k K] [--sigma S]\n"
          "  [--scheduler auto|line|grid|grid-ff|cluster|cluster-greedy|"
          "cluster-random|cluster-best|star|star-greedy|star-random|"
          "star-best|online-fifo|online-batch|greedy-paper|greedy-ff|"
          "greedy-compact|id-order|random-order|serial|exact]\n"
          "  [--metric dense|lazy|auto]\n"
          "  [--seed S] [--trials T] [--window W] [--capacity C] "
          "[--csv FILE] [--telemetry[=FILE]]\n"
          "  [--trace-out FILE] [--trace-format chrome|jsonl]\n"
          "  [--reschedule[=NAME]] [--slack-threshold T]\n"
          "  [--fault-rate P] [--fault-duration D] [--fault-window W] "
          "[--slowdown-rate P] [--slowdown-factor F]\n"
          "  [--loss-rate P] [--fault-seed S]\n"
          "  [--save-graph FILE] [--save-instance FILE] "
          "[--save-schedule FILE]\n"
          "  [--list-schedulers]\n"
          "streaming mode (continual arrivals instead of a fixed batch):\n"
          "  [--arrival-rate R] [--arrival-model poisson|bursty|hot]\n"
          "  [--txns N] [--burst B] [--max-live M] [--optimistic]\n"
          "  [--shards N]               parallel conflict-graph shards "
          "(1 = sequential; any N is bit-identical)\n"
          "  [--admission fixed|adaptive]  admission control: fixed "
          "--max-live bound, or AIMD closed-loop on backlog\n"
          "  [--metrics-out[=FILE]]     write dtm-metrics-v1 JSONL (latency "
          "histograms, per-window samples; default metrics.jsonl;\n"
          "                             summarize with tools/stream_report)\n";
      return 0;
    }
    std::string invocation = "dtm_cli";
    for (int i = 1; i < argc; ++i) invocation += std::string(" ") + argv[i];
    return run(args, invocation);
  } catch (const dtm::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
