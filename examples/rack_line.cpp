// Bus / backplane scenario (§1/§4: "the line graph represents bus system
// architectures, for example connecting boards in a rack").
//
// 32 boards on a linear bus share a handful of mobile objects. The example
// shows the §4 two-phase schedule: it computes ℓ (the longest object walk),
// prints the phase structure, and verifies the 4ℓ guarantee; on a tiny
// instance it also compares against the exact optimum.
#include <iostream>

#include "core/generators.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/line.hpp"
#include "lb/bounds.hpp"
#include "sched/line.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace dtm;

  const Line topo(32);
  const DenseMetric metric(topo.graph);
  Rng rng(9);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 6, .objects_per_txn = 2}, rng);

  // The registry recovers the line topology from the instance's graph;
  // underlying() reaches the concrete LineScheduler for last_ell().
  const auto sched = make_scheduler_for(inst, "line");
  const Schedule s = sched->run(inst, metric);
  DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible line schedule");
  const InstanceBounds lb = compute_bounds(inst, metric);

  const Weight ell =
      dynamic_cast<const LineScheduler&>(*sched->underlying()).last_ell();
  std::cout << "bus with 32 boards; longest object walk ℓ = " << ell << "\n"
            << "two-phase schedule makespan " << s.makespan()
            << "  (paper guarantee 4ℓ = " << 4 * ell << ", certified LB "
            << lb.makespan_lb << ")\n\n";

  // Show which phase each board commits in.
  Table table({"board", "objects", "commit step", "phase"});
  for (const Transaction& t : inst.transactions()) {
    if (t.home % 4 != 0) continue;  // sample every 4th board for brevity
    std::string objs;
    for (ObjectId o : t.objects) objs += (objs.empty() ? "o" : ",o") + std::to_string(o);
    const std::size_t subline = t.home / static_cast<NodeId>(std::max<Weight>(ell, 1));
    table.add_row(t.home, objs, static_cast<double>(s.commit_time[t.id]),
                  subline % 2 == 0 ? 1 : 2);
  }
  table.print(std::cout);

  // Tiny instance: the line schedule vs the true optimum.
  {
    const Line small(7);
    const DenseMetric small_metric(small.graph);
    Rng small_rng(4);
    const Instance tiny = generate_uniform(
        small.graph,
        {.num_objects = 2, .objects_per_txn = 1}, small_rng);
    const auto line_sched = make_scheduler_for(tiny, "line");
    const auto exact = make_scheduler_for(tiny, "exact");
    const Schedule a = line_sched->run(tiny, small_metric);
    const Schedule b = exact->run(tiny, small_metric);
    std::cout << "\ntiny 7-board instance: line schedule " << a.makespan()
              << " vs exact optimum " << b.makespan() << "\n";
  }
  return 0;
}
