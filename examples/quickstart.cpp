// Quickstart: the full pipeline in ~60 lines.
//
//   topology -> workload -> scheduler -> validate -> simulate -> metrics
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/generators.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/grid.hpp"
#include "lb/bounds.hpp"
#include "sched/grid.hpp"
#include "sched/registry.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

int main() {
  using namespace dtm;

  // An 8x8 mesh — think of a 64-core network-on-chip (§5 of the paper).
  const Grid topo(8);
  const DenseMetric metric(topo.graph);

  // One transaction per core; each needs k=2 of w=12 mobile shared objects.
  Rng rng(/*seed=*/42);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 12, .objects_per_txn = 2}, rng);
  std::cout << "workload: " << inst.num_transactions() << " transactions, "
            << inst.num_objects() << " objects, k="
            << inst.max_objects_per_txn() << "\n";

  // Schedule with the paper's §5 subgrid algorithm. The registry recovers
  // the grid topology from the instance's graph; underlying() exposes the
  // concrete scheduler for its run-specific accessors.
  const auto scheduler = make_scheduler_for(inst, "grid");
  const Schedule schedule = scheduler->run(inst, metric);
  std::cout << "scheduler " << scheduler->name() << " chose subgrid side "
            << dynamic_cast<const GridScheduler&>(*scheduler->underlying())
                   .last_subgrid_side()
            << "\n";

  // Check feasibility two independent ways.
  const ValidationResult vr = validate(inst, metric, schedule);
  const SimResult sim = simulate(inst, metric, schedule);
  std::cout << "validator: " << vr.summary() << "\n"
            << "simulator: " << sim.summary() << "\n";

  // Compare against the certified makespan lower bound.
  const InstanceBounds lb = compute_bounds(inst, metric);
  const ScheduleMetrics sm = compute_metrics(inst, metric, schedule);
  std::cout << "makespan " << sm.makespan << " vs lower bound "
            << lb.makespan_lb << " (ratio "
            << static_cast<double>(sm.makespan) /
                   static_cast<double>(lb.makespan_lb)
            << ")\ncommunication " << sm.communication
            << " steps of total object travel\n";

  return vr.ok && sim.ok ? 0 : 1;
}
