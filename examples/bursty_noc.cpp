// Online + bounded-capacity scenario: a NoC where transactions are
// released in bursts (think: phases of a parallel program) and links carry
// one object per step.
//
// Shows the two model extensions working together:
//  * online window-batched scheduling (sched/online.hpp) — commits are
//    fixed without future knowledge;
//  * capacity-constrained re-execution (sim/capacity_sim.hpp) — the
//    resulting policy is replayed on serializing links to measure the
//    congestion stretch.
#include <iostream>

#include "core/generators.hpp"
#include "core/online.hpp"
#include "graph/metric.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/online.hpp"
#include "sim/capacity_sim.hpp"
#include "sim/congestion.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace dtm;

  const Grid topo(12);
  const DenseMetric metric(topo.graph);
  Rng rng(2026);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 24, .objects_per_txn = 2}, rng);
  Rng arrival_rng(7);
  const ArrivalTimes arrival =
      generate_bursty_arrivals(inst.num_transactions(), 120, 4, arrival_rng);

  std::cout << "12x12 NoC, " << inst.num_transactions()
            << " transactions released in 4 bursts over 120 steps\n\n";

  // The capacity replay re-executes only the *policy* (object visit
  // orders), so its baseline is the unbounded replay of the same orders,
  // not the online makespan (which also includes window-close waiting).
  Table table({"algo", "batches", "online makespan", "replay C=inf",
               "replay C=1", "queue-wait C=1", "stretch"});
  auto add_row = [&](OnlineScheduler& sched, std::size_t batches) {
    const Schedule s = sched.run_online(inst, metric, arrival);
    const auto vr = validate_online(inst, metric, arrival, s);
    DTM_REQUIRE(vr.ok, "infeasible online schedule: " << vr.summary());
    const CapacitySimResult unbounded =
        simulate_with_capacity(inst, metric, s, capacity_options(0));
    const CapacitySimResult tight =
        simulate_with_capacity(inst, metric, s, capacity_options(1));
    DTM_REQUIRE(unbounded.ok && tight.ok, "capacity replay failed");
    table.add_row(sched.name(), batches, static_cast<double>(s.makespan()),
                  static_cast<double>(unbounded.makespan),
                  static_cast<double>(tight.makespan),
                  static_cast<double>(tight.total_queue_wait),
                  static_cast<double>(tight.makespan) /
                      static_cast<double>(unbounded.makespan));
  };
  for (Time window : {Time{8}, Time{32}, Time{128}}) {
    OnlineBatchScheduler sched({.window = window});
    (void)sched.run_online(inst, metric, arrival);  // to populate batches
    add_row(sched, sched.last_batches());
  }
  {
    OnlineFifoScheduler fifo;
    add_row(fifo, 0);
  }
  table.print(std::cout);

  std::cout << "\nWindows matched to the burst spacing batch whole bursts "
               "together, giving the offline greedy guarantee per burst; "
               "capacity-1 links stretch the replayed policies only "
               "modestly.\n";
  return 0;
}
