// Datacenter scenario (§1/§6: "the cluster graph is an abstraction of
// clusters of computers found in data centers").
//
// Eight racks of eight machines each; intra-rack hops cost 1 step,
// cross-rack transfers cost γ = 16. The example contrasts:
//   * a rack-local workload (every object used inside one rack) — Theorem
//     4's first case, where the greedy schedule is O(k) and γ never shows;
//   * a scattered workload (objects travel across σ racks) — where
//     Algorithm 1's phases/rounds machinery kicks in.
#include <iostream>

#include "core/generators.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "lb/bounds.hpp"
#include "sched/cluster.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace dtm;

void evaluate(const Metric& metric, const Instance& inst,
              const char* workload, Table& table) {
  const InstanceBounds lb = compute_bounds(inst, metric);
  // Registry names map onto the paper's approaches; the cluster topology is
  // recovered from the instance's graph, and underlying() reaches the
  // concrete ClusterScheduler for its run stats.
  for (auto [label, name] :
       {std::pair{"greedy (Approach 1)", "cluster-greedy"},
        std::pair{"randomized (Algorithm 1)", "cluster-random"},
        std::pair{"auto", "cluster"}}) {
    const auto sched = make_scheduler_for(inst, name, /*seed=*/3);
    const Schedule s = sched->run(inst, metric);
    DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
    const ClusterRunStats& st =
        dynamic_cast<const ClusterScheduler&>(*sched->underlying())
            .last_stats();
    table.add_row(workload, label, static_cast<double>(s.makespan()),
                  static_cast<double>(s.makespan()) /
                      static_cast<double>(std::max<Time>(lb.makespan_lb, 1)),
                  st.sigma,
                  st.used_randomized
                      ? std::to_string(st.phases) + " phases / " +
                            std::to_string(st.total_rounds) + " rounds"
                      : "—");
  }
}

}  // namespace

int main() {
  using namespace dtm;

  const std::size_t racks = 8, machines = 8;
  const Weight gamma = 16;
  const ClusterGraph topo(racks, machines, gamma);
  const DenseMetric metric(topo.graph);
  std::cout << "datacenter: " << racks << " racks x " << machines
            << " machines, cross-rack latency " << gamma << " steps\n\n";

  Table table({"workload", "scheduler", "makespan", "ratio", "sigma",
               "phase/round usage"});
  {
    Rng rng(11);
    const Instance local = generate_cluster_local(topo, 32, 2, rng);
    evaluate(metric, local, "rack-local", table);
  }
  {
    Rng rng(12);
    const Instance scattered = generate_cluster_spread(topo, 24, 2, 4, rng);
    evaluate(metric, scattered, "scattered σ≈4", table);
  }
  table.print(std::cout);

  std::cout << "\nTakeaway (Theorem 4): rack-local traffic schedules in O(k)"
               " regardless of γ; scattered traffic pays Ω(σγ) no matter "
               "what, and the scheduler picks whichever approach's factor — "
               "kβ or 40^k ln^k m — is smaller.\n";
  return 0;
}
