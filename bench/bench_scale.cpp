// E21 — million-node substrate: the full pipeline (generate -> schedule ->
// validate -> simulate) on 10^6-node structured graphs with 10^6
// transactions. Feasible only because every layer stays (near-)linear:
// AnalyticMetric answers distance queries in O(1) from closed forms (a
// DenseMetric APSP matrix would need 10^12 entries), the engine keeps its
// hot per-object state in flat arrays, and commits drain through calendar
// buckets instead of sorted scans.
//
// Default run is the full scale (8000x125 cluster graph and 1000x1000
// grid); --smoke shrinks both to ~10^3 nodes so the recorded
// BENCH_scale.json stays cheap enough to re-run as a CI gate
// (bench_compare --no-timers: series + counters only, wall times and RSS
// are informational).
#include "bench_common.hpp"

#include <chrono>

#include "core/generators.hpp"
#include "graph/analytic_metric.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/cluster.hpp"
#include "sched/grid.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

/// Wall-clock seconds of one closure; the phase also lands in the artifact
/// timer block under `timer_name` (informational for bench_compare).
template <typename Fn>
double timed(const char* timer_name, const Fn& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  {
    ScopedPhaseTimer timer(timer_name);
    fn();
  }
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

struct ScaleCell {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t txns = 0;
  std::size_t objects = 0;
  Time makespan = 0;
  Weight travel = 0;
  double build_s = 0, generate_s = 0, schedule_s = 0;
  double validate_s = 0, simulate_s = 0;
};

/// Shared tail of both topologies: seeded workload, schedule, validate,
/// simulate on the analytic engine. The schedule must be feasible and the
/// reliable unbounded substrate must realize exactly the planned makespan —
/// a wrong answer at scale is still a wrong answer.
template <typename MakeSchedule>
void run_pipeline(ScaleCell& cell, const Graph& g, const Metric& metric,
                  std::size_t num_objects, const MakeSchedule& make_schedule) {
  cell.nodes = g.num_nodes();
  cell.edges = g.num_edges();
  cell.objects = num_objects;

  Instance inst;
  cell.generate_s = timed("phase.generate", [&] {
    Rng rng(2026);
    inst = generate_uniform(
        g, {.num_objects = num_objects, .objects_per_txn = 2}, rng);
  });
  cell.txns = inst.num_transactions();

  Schedule s;
  cell.schedule_s =
      timed("phase.schedule", [&] { s = make_schedule(inst); });
  cell.makespan = s.makespan();

  cell.validate_s = timed("phase.validation", [&] {
    const ValidationResult vr = validate(inst, metric, s);
    DTM_REQUIRE(vr.ok, "scale bench produced infeasible schedule: "
                           << vr.summary());
  });

  cell.simulate_s = timed("phase.simulate", [&] {
    const SimResult sim = simulate(inst, metric, s);
    DTM_REQUIRE(sim.ok, "scale bench simulation failed: " << sim.summary());
    DTM_REQUIRE(sim.realized_makespan == cell.makespan,
                "reliable substrate drifted from the plan: realized "
                    << sim.realized_makespan << " vs planned "
                    << cell.makespan);
    cell.travel = sim.object_travel;
  });
}

ScaleCell run_cluster(std::size_t alpha, std::size_t beta, Weight gamma,
                      std::size_t num_objects) {
  ScaleCell cell;
  std::unique_ptr<ClusterGraph> topo;
  cell.build_s = timed("phase.build_graph", [&] {
    topo = std::make_unique<ClusterGraph>(alpha, beta, gamma);
  });
  const auto metric = make_analytic_metric(*topo);
  DTM_REQUIRE(metric != nullptr, "cluster graph has no analytic oracle");
  run_pipeline(cell, topo->graph, *metric, num_objects, [&](const Instance& inst) {
    ClusterScheduler sched(*topo,
                           {.approach = ClusterApproach::kGreedy});
    return sched.run(inst, *metric);
  });
  return cell;
}

ScaleCell run_grid(std::size_t side, std::size_t subgrid_side,
                   std::size_t num_objects) {
  ScaleCell cell;
  std::unique_ptr<Grid> topo;
  cell.build_s =
      timed("phase.build_graph", [&] { topo = std::make_unique<Grid>(side); });
  const auto metric = make_analytic_metric(*topo);
  DTM_REQUIRE(metric != nullptr, "grid has no analytic oracle");
  run_pipeline(cell, topo->graph, *metric, num_objects, [&](const Instance& inst) {
    GridScheduler sched(*topo, {.forced_subgrid_side = subgrid_side});
    return sched.run(inst, *metric);
  });
  return cell;
}

void add_rows(Table& series, Table& walltimes, const char* name,
              const ScaleCell& c) {
  // Series row: fully deterministic (seeded workload, greedy schedulers,
  // analytic engine) — bench_compare gates on it cell-for-cell.
  series.add_row(name, c.nodes, c.edges, c.txns, c.objects, c.makespan,
                 c.travel);
  // Wall times are machine noise; printed but NOT recorded as a series.
  walltimes.add_row(name, c.build_s, c.generate_s, c.schedule_s, c.validate_s,
                    c.simulate_s,
                    c.build_s + c.generate_s + c.schedule_s + c.validate_s +
                        c.simulate_s);
}

void print_series(bool smoke) {
  benchutil::print_header(
      "E21 — million-node substrate",
      smoke ? "smoke scale (~10^3 nodes): the CI-gated shape check"
            : "10^6 transactions on 10^6-node cluster and grid substrates");

  Table series({"topology", "n", "edges", "txns", "objects", "makespan",
                "object_travel"});
  Table walltimes({"topology", "build_s", "generate_s", "schedule_s",
                   "validate_s", "simulate_s", "total_s"});

  if (smoke) {
    add_rows(series, walltimes, "cluster", run_cluster(40, 25, 25, 1000));
    add_rows(series, walltimes, "grid", run_grid(32, 8, 1024));
  } else {
    add_rows(series, walltimes, "cluster",
             run_cluster(8000, 125, 125, 1'000'000));
    add_rows(series, walltimes, "grid", run_grid(1000, 250, 1'000'000));
  }
  benchutil::emit_table("scale", series);

  std::cout << "\nwall-clock per phase (informational, not part of the "
               "artifact series):\n";
  walltimes.print(std::cout);
  std::cout << "peak RSS: "
            << static_cast<double>(benchutil::peak_rss_bytes()) / 1e9
            << " GB\n";
}

// Timing loop at smoke scale only: full scale belongs in the one-shot
// series run above, not a google-benchmark repetition loop.
void BM_ScheduleClusterSmoke(benchmark::State& state) {
  const ClusterGraph topo(40, 25, 25);
  const auto metric = make_analytic_metric(topo);
  Rng rng(2026);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 1000, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    ClusterScheduler sched(topo, {.approach = ClusterApproach::kGreedy});
    const Schedule s = sched.run(inst, *metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_ScheduleClusterSmoke)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("scale", argc, argv);
  const bool smoke = dtm::benchutil::strip_flag(argc, argv, "--smoke");
  print_series(smoke);
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
