// E9 — ablation of the §2.3 greedy schedule's degrees of freedom:
// coloring rule (paper pigeonhole vs first-fit), coloring order (id /
// degree-descending / random), and the earliest-time compaction pass.
//
// Expected shape: first-fit <= pigeonhole (often much less), compaction
// strictly helps on sparse instances, order matters little on uniform
// workloads but degree-descending helps on hot-spot workloads.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void series(const char* workload, const Graph& g, const Metric& metric,
            const std::function<Instance(std::uint64_t)>& make_inst,
            Table& table) {
  struct Variant {
    const char* name;
    GreedyOptions opts;
  };
  const Variant variants[] = {
      {"paper/id", {ColoringRule::kPaperPigeonhole, ColoringOrder::kById,
                    false, 1}},
      {"ff/id", {ColoringRule::kFirstFit, ColoringOrder::kById, false, 1}},
      {"ff/degree", {ColoringRule::kFirstFit, ColoringOrder::kByDegreeDesc,
                     false, 1}},
      {"ff/random", {ColoringRule::kFirstFit, ColoringOrder::kRandom, false,
                     1}},
      {"ff/id+compact", {ColoringRule::kFirstFit, ColoringOrder::kById, true,
                         1}},
  };
  (void)g;
  for (const Variant& v : variants) {
    const auto summary = benchutil::run_trials(
        metric, make_inst,
        [&](std::uint64_t seed) {
          GreedyOptions opts = v.opts;
          opts.seed = seed;
          return std::make_unique<GreedyScheduler>(opts);
        },
        /*trials=*/8, /*seed0=*/99);
    table.add_row(workload, v.name, summary.lower_bound.mean(),
                  summary.makespan.mean(), summary.ratio.mean(),
                  summary.ratio.max());
  }
}

void print_series() {
  benchutil::print_header(
      "E9 — greedy-schedule ablation (rule / order / compaction)",
      "first-fit and compaction tighten the paper rule's constants without "
      "touching the O(Δ+1) guarantee");
  Table table({"workload", "variant", "LB(mean)", "makespan(mean)",
               "ratio(mean)", "ratio(max)"});
  {
    const Clique topo(64);
    const DenseMetric metric(topo.graph);
    series("clique-uniform", topo.graph, metric,
           [&](std::uint64_t seed) {
             Rng rng(seed);
             return generate_uniform(
                 topo.graph, {.num_objects = 16, .objects_per_txn = 2}, rng);
           },
           table);
    series("clique-hotspot", topo.graph, metric,
           [&](std::uint64_t seed) {
             Rng rng(seed);
             return generate_hotspot(topo.graph, 16, 2, rng);
           },
           table);
  }
  {
    const Grid topo(12);
    const DenseMetric metric(topo.graph);
    series("grid-uniform", topo.graph, metric,
           [&](std::uint64_t seed) {
             Rng rng(seed);
             return generate_uniform(
                 topo.graph, {.num_objects = 12, .objects_per_txn = 2}, rng);
           },
           table);
  }
  benchutil::emit_table("main", table);
}

void BM_ColoringRule(benchmark::State& state) {
  const bool first_fit = state.range(0) != 0;
  const Clique topo(128);
  const DenseMetric metric(topo.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = 4}, rng);
  for (auto _ : state) {
    GreedyOptions opts;
    opts.rule = first_fit ? ColoringRule::kFirstFit
                          : ColoringRule::kPaperPigeonhole;
    GreedyScheduler sched(opts);
    const Schedule s = sched.run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_ColoringRule)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("ablation_coloring", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
