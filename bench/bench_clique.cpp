// E1 — Theorem 1 (Clique): the greedy schedule is an O(k) approximation.
//
// Series: for each (n, k, w), mean certified lower bound, mean makespan of
// the paper-rule greedy schedule, their ratio, and the proven O(k) factor.
// Expected shape: ratio roughly flat in n, growing at most linearly in k,
// always under the k+2 accounting of Theorem 1's proof.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/clique.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void print_series() {
  benchutil::print_header(
      "E1 / Theorem 1 — Clique",
      "greedy is O(k)-approximate; ratio should track k, not n");
  Table table({"n", "w", "k", "LB(mean)", "makespan(mean)", "ratio(mean)",
               "ratio(max)", "paper k+2"});
  for (std::size_t n : {32u, 64u, 128u}) {
    const Clique topo(n);
    const DenseMetric metric(topo.graph);
    for (std::size_t w : {8u, 16u}) {
      for (std::size_t k : {1u, 2u, 4u, 8u}) {
        if (k > w) continue;
        const auto summary = benchutil::run_trials(
            metric,
            [&](std::uint64_t seed) {
              Rng rng(seed);
              return generate_uniform(
                  topo.graph,
                  {.num_objects = w,
                   .objects_per_txn = k,
                   .placement = ObjectPlacement::kRandomNode},
                  rng);
            },
            [&](std::uint64_t seed) {
              GreedyOptions opts;
              opts.seed = seed;
              return std::make_unique<GreedyScheduler>(opts);
            },
            /*trials=*/5, /*seed0=*/1000 * n + 10 * w + k);
        table.add_row(n, w, k, summary.lower_bound.mean(),
                      summary.makespan.mean(), summary.ratio.mean(),
                      summary.ratio.max(), k + 2);
      }
    }
  }
  benchutil::emit_table("main", table);
}

void BM_GreedyOnClique(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const Clique topo(n);
  const DenseMetric metric(topo.graph);
  Rng rng(7);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = k}, rng);
  double ratio = 0;
  for (auto _ : state) {
    GreedyScheduler sched;
    const Schedule s = sched.run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
    const InstanceBounds lb = compute_bounds(inst, metric);
    ratio = static_cast<double>(s.makespan()) /
            static_cast<double>(std::max<Time>(lb.makespan_lb, 1));
  }
  state.counters["ratio"] = ratio;
}
BENCHMARK(BM_GreedyOnClique)
    ->Args({64, 2})
    ->Args({64, 8})
    ->Args({256, 2})
    ->Args({256, 8})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("clique", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
