// E17 — read/write workloads under replication / multi-versioning (§1.2:
// "our results for the data-flow model also apply to restricted versions
// of other models where objects may be replicated or versioned").
//
// Series: sweep the write fraction. With all-writes the model degenerates
// to the paper's single-copy setting; as reads dominate, the conflict
// graph thins out and copies serve readers in parallel. Expected shape:
// makespan falls monotonically with the write fraction, multi-version <=
// single-version <= single-copy, with the largest wins on hot objects.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "core/rw.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/rw_greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void series(const char* topology, const Graph& g, const Metric& metric,
            bool hotspot, Table& table) {
  for (double frac : {1.0, 0.5, 0.2, 0.05}) {
    Stats single_copy, sv, mv;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      telemetry::count("bench.trials");
      Rng rng(seed * 61);
      const Instance inst =
          hotspot ? generate_hotspot(g, 8, 2, rng)
                  : generate_uniform(
                        g, {.num_objects = 8, .objects_per_txn = 2}, rng);
      const WriteSets writes = generate_write_sets(inst, frac, rng);
      WriteSets all(inst.num_transactions());
      for (TxnId t = 0; t < inst.num_transactions(); ++t) {
        all[t] = inst.txn(t).objects;
      }
      RwGreedyOptions opts;
      opts.policy = RwPolicy::kMultiVersion;
      const RwSchedule base = schedule_rw_greedy(inst, all, metric, opts);
      const RwSchedule mv_s = schedule_rw_greedy(inst, writes, metric, opts);
      opts.policy = RwPolicy::kSingleVersion;
      const RwSchedule sv_s = schedule_rw_greedy(inst, writes, metric, opts);
      DTM_REQUIRE(
          check_rw(inst, writes, metric, mv_s, RwPolicy::kMultiVersion)
              .empty(),
          "infeasible multi-version schedule");
      DTM_REQUIRE(
          check_rw(inst, writes, metric, sv_s, RwPolicy::kSingleVersion)
              .empty(),
          "infeasible single-version schedule");
      single_copy.add(static_cast<double>(base.makespan()));
      sv.add(static_cast<double>(sv_s.makespan()));
      mv.add(static_cast<double>(mv_s.makespan()));
    }
    table.add_row(topology, hotspot ? "hotspot" : "uniform", frac,
                  single_copy.mean(), sv.mean(), mv.mean(),
                  single_copy.mean() / std::max(mv.mean(), 1.0));
  }
}

void print_series() {
  benchutil::print_header(
      "E17 — replication / multi-versioning (§1.2)",
      "makespan vs write fraction; single-copy (all accesses exclusive) vs "
      "single-version replication vs multi-versioning");
  Table table({"topology", "workload", "write frac", "single-copy mk",
               "single-version mk", "multi-version mk", "speedup (mv)"});
  {
    const Clique topo(32);
    const DenseMetric metric(topo.graph);
    series("clique32", topo.graph, metric, false, table);
    series("clique32", topo.graph, metric, true, table);
  }
  {
    const Grid topo(8);
    const DenseMetric metric(topo.graph);
    series("grid8", topo.graph, metric, false, table);
  }
  benchutil::emit_table("main", table);
}

void BM_RwGreedy(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 12, .objects_per_txn = 2}, rng);
  const WriteSets writes = generate_write_sets(inst, 0.3, rng);
  for (auto _ : state) {
    const RwSchedule s = schedule_rw_greedy(inst, writes, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_RwGreedy)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("replication", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
