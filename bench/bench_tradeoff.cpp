// E14 — execution time vs communication cost (the impossibility result of
// Busch et al. [PODC 2015], reference [3], which the paper builds on: both
// objectives cannot be minimized simultaneously).
//
// Series: for the same workloads, schedulers optimized for makespan
// (greedy/compact) against movement-frugal baselines (serial token
// passing). Expected shape: rows form a Pareto frontier — lower makespan
// rows show higher communication and vice versa; no scheduler wins both
// columns.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "core/metrics.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/hypercube.hpp"
#include "sched/baseline.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void series(const char* topology, const Graph& g, const Metric& metric,
            Table& table) {
  struct Algo {
    const char* label;
    std::function<std::unique_ptr<Scheduler>(std::uint64_t)> make;
  };
  const Algo algos[] = {
      {"greedy-ff-compact",
       [](std::uint64_t seed) {
         GreedyOptions o;
         o.rule = ColoringRule::kFirstFit;
         o.compact = true;
         o.seed = seed;
         return std::make_unique<GreedyScheduler>(o);
       }},
      {"id-order",
       [](std::uint64_t seed) {
         return std::make_unique<OrderScheduler>(OrderOptions{false, false, seed});
       }},
      {"serial",
       [](std::uint64_t seed) {
         return std::make_unique<OrderScheduler>(OrderOptions{false, true, seed});
       }},
  };
  for (const Algo& algo : algos) {
    Stats makespan, comm;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      Rng rng(seed * 53);
      const Instance inst = generate_uniform(
          g, {.num_objects = 10, .objects_per_txn = 2}, rng);
      auto sched = algo.make(seed);
      const Schedule s = sched->run(inst, metric);
      DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
      const ScheduleMetrics sm = compute_metrics(inst, metric, s);
      makespan.add(static_cast<double>(sm.makespan));
      comm.add(static_cast<double>(sm.communication));
    }
    table.add_row(topology, algo.label, makespan.mean(), comm.mean(),
                  comm.mean() / makespan.mean());
  }
}

void print_series() {
  benchutil::print_header(
      "E14 — makespan vs communication trade-off (ref [3], PODC 2015)",
      "the same workloads under time-optimizing vs movement-frugal "
      "schedulers; no row should win both columns");
  Table table({"topology", "scheduler", "makespan(mean)", "communication(mean)",
               "comm/makespan"});
  {
    const Grid topo(10);
    const DenseMetric metric(topo.graph);
    series("grid10", topo.graph, metric, table);
  }
  {
    const Hypercube topo(7);
    const DenseMetric metric(topo.graph);
    series("hypercube128", topo.graph, metric, table);
  }
  benchutil::emit_table("main", table);
}

void BM_MetricsComputation(benchmark::State& state) {
  const Hypercube topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(5);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = 2}, rng);
  GreedyScheduler sched;
  const Schedule s = sched.run(inst, metric);
  for (auto _ : state) {
    const ScheduleMetrics sm = compute_metrics(inst, metric, s);
    benchmark::DoNotOptimize(sm.communication);
  }
}
BENCHMARK(BM_MetricsComputation)->Arg(6)->Arg(8)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("tradeoff", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
