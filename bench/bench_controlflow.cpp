// E16 — data-flow vs control-flow (§1.2 related work; Palmieri et al. [27]
// study this comparison experimentally for partially-replicated DTMs).
//
// Same workloads, two execution models: the paper's data-flow (objects
// travel, §2.3 greedy + compaction) vs control-flow (objects pinned home,
// serial RPC round trips). Expected shape: data-flow wins when objects are
// shared by many far-away transactions (ℓ large — each access would pay a
// full round trip, while a moving object pays each inter-requester hop
// once); control-flow closes the gap when sharing is light or requesters
// sit near the object's home.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/control_flow.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void series(const char* topology, const Graph& g, const Metric& metric,
            std::size_t w, std::size_t k, bool hotspot, Table& table) {
  Stats df_mk, cf_mk, df_comm, cf_comm;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 97);
    const Instance inst =
        hotspot ? generate_hotspot(g, w, k, rng)
                : generate_uniform(
                      g,
                      {.num_objects = w,
                       .objects_per_txn = k,
                       .placement = ObjectPlacement::kRandomNode},
                      rng);
    GreedyOptions o;
    o.rule = ColoringRule::kFirstFit;
    o.compact = true;
    GreedyScheduler df(o);
    const Schedule s = df.run(inst, metric);
    DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible data-flow schedule");
    const ScheduleMetrics sm = compute_metrics(inst, metric, s);
    const ControlFlowResult cf =
        schedule_control_flow(inst, metric, ControlFlowOrder::kNearestFirst);
    DTM_REQUIRE(check_control_flow(inst, metric, cf).empty(),
                "inconsistent control-flow result");
    df_mk.add(static_cast<double>(sm.makespan));
    df_comm.add(static_cast<double>(sm.communication));
    cf_mk.add(static_cast<double>(cf.makespan()));
    cf_comm.add(static_cast<double>(cf.communication));
  }
  table.add_row(topology, w, k, hotspot ? "hotspot" : "uniform", df_mk.mean(),
                cf_mk.mean(), cf_mk.mean() / df_mk.mean(), df_comm.mean(),
                cf_comm.mean());
}

void print_series() {
  benchutil::print_header(
      "E16 — data-flow vs control-flow execution (§1.2, ref [27])",
      "data-flow = §2.3 greedy with mobile objects; control-flow = serial "
      "RPC round trips to pinned objects (nearest-first service)");
  Table table({"topology", "w", "k", "workload", "data-flow mk",
               "control-flow mk", "cf/df", "df comm", "cf comm"});
  {
    const Clique topo(48);
    const DenseMetric metric(topo.graph);
    series("clique48", topo.graph, metric, 24, 2, false, table);
    series("clique48", topo.graph, metric, 6, 2, false, table);
    series("clique48", topo.graph, metric, 6, 2, true, table);
  }
  {
    const Grid topo(10);
    const DenseMetric metric(topo.graph);
    series("grid10", topo.graph, metric, 24, 2, false, table);
    series("grid10", topo.graph, metric, 6, 2, false, table);
    series("grid10", topo.graph, metric, 6, 2, true, table);
  }
  benchutil::emit_table("main", table);
}

void BM_ControlFlow(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 12, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    const ControlFlowResult r = schedule_control_flow(inst, metric);
    benchmark::DoNotOptimize(r.commit_time.data());
  }
}
BENCHMARK(BM_ControlFlow)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("controlflow", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
