// E22 — streaming runtime (ROADMAP item 2 / open question #1): sustained
// throughput and backlog under continual arrivals, window-batched
// scheduling vs the TL2-style optimistic baseline.
//
// Series:
//  * capacity  — per (topology, arrival model): service capacity mu of the
//    window-batched StreamingRuntime, measured by overloading the runtime
//    (arrivals well above what it sustains, spread across many windows so
//    the measurement includes per-window object-transition overhead).
//  * backlog   — runs at 0.5x and 0.8x that measured capacity, at stream
//    lengths n and 2n. Bounded backlog means doubling the stream leaves
//    the peak backlog essentially unchanged (steady state) instead of
//    doubling it (divergence); the bench REQUIREs this at both factors, so
//    the CI gate is semantic, not just cell-identity.
//  * throughput — sustained txns/step at 0.8x capacity: scheduler vs the
//    optimistic executor on the identical stream (same arrivals, homes,
//    and read sets), plus the optimistic abort/wasted-work cost.
//
// Expected shape: the scheduler sustains higher throughput than the
// optimistic baseline on contended streams (hot-object especially, where
// validation aborts burn work) while keeping backlog flat below capacity.
//
// E23 — sharded pipeline + closed-loop admission (DESIGN.md §10), emitted
// as a second artifact behind --shard-json FILE:
//  * shard_identity — the same stream scheduled at shards 1/2/4/8: every
//    result cell is REQUIREd identical to the shards=1 row (the tentpole's
//    bit-identity contract, gated in CI by cell comparison).
//  * shard_balance — per-shard load split (local/cross/fix-up transactions,
//    peak shard batch) of those runs.
//  * admission — fixed tight bound vs AIMD at 0.9x measured capacity: the
//    fixed bound defers work without bound while AIMD opens the quota and
//    keeps the backlog bounded, then cuts back once caught up.
// The wall-clock speedup of the parallel window-scheduling path (shards=1
// vs 4 on a group-local cluster workload) is printed to stdout and left in
// the timer section only — never in gated series cells.
//
// --smoke runs the reduced stream lengths; the recorded BENCH_stream.json
// baseline is the smoke artifact so CI can re-run and diff it cheaply.
#include "bench_common.hpp"

#include "core/online.hpp"
#include "graph/partition.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "sim/optimistic.hpp"
#include "sim/runtime.hpp"
#include "util/metrics.hpp"
#include "util/telemetry.hpp"

namespace {

using namespace dtm;

constexpr std::size_t kObjects = 8;
constexpr std::size_t kObjectsPerTxn = 2;
constexpr Time kWindow = 64;
constexpr std::uint64_t kSeed = 5;

ArrivalStreamOptions stream_options(std::size_t n, double rate) {
  ArrivalStreamOptions opt;
  opt.num_txns = n;
  opt.num_objects = kObjects;
  opt.objects_per_txn = kObjectsPerTxn;
  opt.rate = rate;
  return opt;
}

StreamingRuntime run_stream_opts(const Graph& g, const Metric& m,
                                 ArrivalModel model, double rate,
                                 std::size_t n,
                                 const StreamingRuntimeOptions& opts) {
  StreamingRuntime rt(g, m, StreamingRuntime::spread_homes(g, kObjects),
                      opts);
  auto src = make_arrival_source(model, g, stream_options(n, rate), kSeed);
  rt.ingest_all(*src);
  rt.drain();
  const auto vr =
      validate_online(rt.materialize(), m, rt.arrivals(), rt.schedule());
  DTM_REQUIRE(vr.ok, "infeasible streaming schedule: " << vr.summary());
  return rt;
}

StreamingRuntime run_stream(const Graph& g, const Metric& m,
                            ArrivalModel model, double rate, std::size_t n) {
  StreamingRuntimeOptions opts;
  opts.window = kWindow;
  return run_stream_opts(g, m, model, rate, n, opts);
}

/// The identical stream as an offline instance + arrival vector, for the
/// optimistic executor (streams revisit nodes, hence shared homes).
std::pair<Instance, ArrivalTimes> materialize_stream(const Graph& g,
                                                     ArrivalModel model,
                                                     double rate,
                                                     std::size_t n) {
  InstanceBuilder b(g, kObjects);
  b.allow_shared_homes();
  ArrivalTimes arrival;
  auto src = make_arrival_source(model, g, stream_options(n, rate), kSeed);
  ArrivingTxn t;
  while (src->next(t)) {
    b.add_transaction(t.home, t.objects);
    arrival.push_back(t.arrival);
  }
  const std::vector<NodeId> homes =
      StreamingRuntime::spread_homes(g, kObjects);
  for (ObjectId o = 0; o < kObjects; ++o) b.set_object_home(o, homes[o]);
  return {b.build(), std::move(arrival)};
}

/// Measured capacity: the highest rate the runtime actually services. The
/// overload throughput alone overstates it — overloaded windows carry far
/// larger batches than steady state, and bigger batches amortize the
/// per-window object transition better — so iterate to the fixed point:
/// feed at the current estimate, and if the achieved throughput falls
/// short (service-limited, backlog building), the achieved value becomes
/// the new estimate. Converges once the runtime sustains the offered rate.
double measure_capacity(const Graph& g, const Metric& m, ArrivalModel model,
                        std::size_t n) {
  double mu = run_stream(g, m, model, 2.0, n).stats().throughput;
  for (int i = 0; i < 6; ++i) {
    const double achieved = run_stream(g, m, model, mu, n).stats().throughput;
    if (achieved >= 0.97 * mu) break;
    mu = achieved;
  }
  return mu;
}

const char* model_name(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kPoisson: return "poisson";
    case ArrivalModel::kBursty: return "bursty";
    case ArrivalModel::kHotObject: return "hot";
  }
  return "?";
}

void print_series(bool smoke) {
  benchutil::print_header(
      "E22 — streaming runtime (open question #1)",
      "window-batched incremental scheduling under continual arrivals: "
      "measured capacity, backlog boundedness at 0.5x/0.8x capacity, and "
      "sustained throughput vs the TL2-style optimistic baseline");

  const std::size_t n = smoke ? 200 : 500;
  const Grid grid(6);
  const DenseMetric grid_metric(grid.graph);
  const ClusterGraph cluster(4, 8, 16);
  const DenseMetric cluster_metric(cluster.graph);
  const std::tuple<const char*, const Graph&, const Metric&> topologies[] = {
      {"grid6", grid.graph, grid_metric},
      {"cluster4x8", cluster.graph, cluster_metric},
  };
  const ArrivalModel models[] = {ArrivalModel::kPoisson,
                                 ArrivalModel::kBursty,
                                 ArrivalModel::kHotObject};

  Table capacity({"graph", "arrivals", "window", "txns", "capacity"});
  Table backlog({"graph", "arrivals", "factor", "rate", "peak(n)",
                 "peak(2n)", "mean(2n)"});
  Table throughput({"graph", "arrivals", "executor", "rate", "committed",
                    "makespan", "throughput", "aborts", "wasted"});

  for (const auto& [gname, g, metric] : topologies) {
    for (ArrivalModel model : models) {
      const double mu = measure_capacity(g, metric, model, n);
      capacity.add_row(gname, model_name(model), kWindow, n, mu);

      for (double factor : {0.5, 0.8}) {
        const double rate = factor * mu;
        const StreamingRuntime one = run_stream(g, metric, model, rate, n);
        const StreamingRuntime two =
            run_stream(g, metric, model, rate, 2 * n);
        DTM_REQUIRE(one.stats().committed == n &&
                        two.stats().committed == 2 * n,
                    "stream did not fully commit");
        // Bounded backlog: steady state, not linear growth in the stream.
        const auto peak1 = static_cast<double>(one.stats().peak_backlog);
        const auto peak2 = static_cast<double>(two.stats().peak_backlog);
        DTM_REQUIRE(peak2 < 1.5 * peak1 + 16.0,
                    "backlog diverges at " << factor << "x capacity on "
                                           << gname << "/"
                                           << model_name(model) << ": peak "
                                           << peak1 << " -> " << peak2);
        backlog.add_row(gname, model_name(model), factor, rate,
                        one.stats().peak_backlog, two.stats().peak_backlog,
                        two.stats().mean_backlog);

        if (factor == 0.8) {
          throughput.add_row(gname, model_name(model), "stream-batch", rate,
                             two.stats().committed,
                             static_cast<double>(two.stats().makespan),
                             two.stats().throughput, 0, 0);
          const auto [inst, arrival] =
              materialize_stream(g, model, rate, 2 * n);
          OptimisticOptions oopts;
          oopts.seed = kSeed;
          const OptimisticResult r =
              run_optimistic(inst, metric, arrival, oopts);
          DTM_REQUIRE(r.ok, "optimistic baseline failed: " << r.error);
          throughput.add_row(gname, model_name(model), "tl2-optimistic",
                             rate, r.commits,
                             static_cast<double>(r.makespan), r.throughput,
                             r.aborts, static_cast<double>(r.wasted_steps));
        }
      }
    }
  }
  benchutil::emit_table("capacity", capacity);
  benchutil::emit_table("backlog", backlog);
  benchutil::emit_table("throughput", throughput);
}

// --- E23: sharded pipeline + closed-loop admission ----------------------

/// Group-local cluster workload on a shard-aligned placement: the regime
/// the sharded coloring pipeline parallelizes (conflicts stay inside one
/// shard, so the fix-up pass is empty and all coloring fans out).
StreamingRuntime run_group_local(const Graph& g, const Metric& m,
                                 const std::vector<NodeId>& homes,
                                 std::size_t shards, std::size_t n,
                                 std::size_t w, double rate, Time window) {
  ArrivalStreamOptions so;
  so.num_txns = n;
  so.num_objects = w;
  so.objects_per_txn = kObjectsPerTxn;
  so.rate = rate;
  so.groups = 4;
  StreamingRuntimeOptions opts;
  opts.window = window;
  opts.shards = shards;
  StreamingRuntime rt(g, m, homes, opts);
  auto src = make_arrival_source(ArrivalModel::kPoisson, g, so, kSeed);
  rt.ingest_all(*src);
  rt.drain();
  return rt;
}

/// Total wall time spent in schedule_window (the phase the shards
/// parallelize), read back from the phase-timer registry.
double window_phase_ms() {
  const auto snap = TelemetryRegistry::global().snapshot();
  const auto it = snap.timers.find("phase.sched.stream_window");
  return it == snap.timers.end() ? 0.0 : it->second.total_ns / 1e6;
}

void print_shard_series(bool smoke) {
  benchutil::print_header(
      "E23 — sharded scheduling + closed-loop admission (DESIGN.md §10)",
      "shard-count bit-identity of the parallel coloring pipeline, "
      "per-shard load balance, wall-clock window-scheduling speedup, and "
      "AIMD admission vs a fixed bound at 0.9x measured capacity");

  const ClusterGraph cluster(4, 8, 16);
  const DenseMetric cluster_metric(cluster.graph);

  // Wall-clock speedup first (it resets the telemetry registry around each
  // timed run); the numbers go to stdout only — wall time never enters
  // gated series cells. Group-local load + shard-aligned homes keep every
  // window's coloring shard-confined, the workload the pipeline targets.
  const std::size_t sn = smoke ? 4000 : 16000;
  const std::size_t sw = 64;  // object universe of the speedup workload
  const ShardMap map4 = make_shard_map(cluster.graph, 4);
  const std::vector<NodeId> aligned = shard_aligned_homes(map4, sw);
  TelemetryRegistry::global().reset();
  const StreamingRuntime seq = run_group_local(
      cluster.graph, cluster_metric, aligned, 1, sn, sw, 4.0, 128);
  const double seq_ms = window_phase_ms();
  TelemetryRegistry::global().reset();
  const StreamingRuntime par = run_group_local(
      cluster.graph, cluster_metric, aligned, 4, sn, sw, 4.0, 128);
  const double par_ms = window_phase_ms();
  DTM_REQUIRE(seq.stats().makespan == par.stats().makespan &&
                  seq.stats().committed == par.stats().committed,
              "sharded speedup run diverged from the sequential schedule");
  std::cout << "window-scheduling wall time, group-local cluster4x8 (n="
            << sn << ", w=" << sw << "): shards=1 " << seq_ms
            << " ms, shards=4 " << par_ms << " ms, speedup "
            << (par_ms > 0 ? seq_ms / par_ms : 0.0) << "x\n\n";
  TelemetryRegistry::global().reset();

  // Identity + balance: the E22 stream re-scheduled at every shard count.
  const std::size_t n = smoke ? 200 : 500;
  const Grid grid(6);
  const DenseMetric grid_metric(grid.graph);
  const std::tuple<const char*, const Graph&, const Metric&> topologies[] = {
      {"grid6", grid.graph, grid_metric},
      {"cluster4x8", cluster.graph, cluster_metric},
  };

  Table identity({"graph", "arrivals", "shards", "committed", "makespan",
                  "throughput", "deferrals", "peak_backlog"});
  Table balance({"graph", "arrivals", "shards", "scheme", "local", "cross",
                 "fixup", "peak_members"});
  for (const auto& [gname, g, metric] : topologies) {
    for (ArrivalModel model :
         {ArrivalModel::kPoisson, ArrivalModel::kHotObject}) {
      StreamStats ref;
      for (std::size_t shards :
           {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        StreamingRuntimeOptions opts;
        opts.window = kWindow;
        opts.shards = shards;
        opts.max_live_admitted = 64;  // backpressure active in every run
        const StreamingRuntime rt =
            run_stream_opts(g, metric, model, 1.0, n, opts);
        const StreamStats& st = rt.stats();
        if (shards == 1) {
          ref = st;
        } else {
          // The tentpole contract: sharding never changes the schedule.
          DTM_REQUIRE(st.makespan == ref.makespan &&
                          st.committed == ref.committed &&
                          st.deferrals == ref.deferrals &&
                          st.peak_backlog == ref.peak_backlog &&
                          st.throughput == ref.throughput,
                      "shards=" << shards << " diverged from shards=1 on "
                                << gname << "/" << model_name(model));
        }
        identity.add_row(gname, model_name(model), shards, st.committed,
                         static_cast<double>(st.makespan), st.throughput,
                         st.deferrals, st.peak_backlog);
        const ShardLoadStats& sl = rt.shard_stats();
        balance.add_row(gname, model_name(model), shards, sl.scheme,
                        sl.local_txns, sl.cross_txns, sl.fixup_txns,
                        sl.peak_shard_members);
      }
    }
  }
  benchutil::emit_table("shard_identity", identity);
  benchutil::emit_table("shard_balance", balance);

  // Closed-loop admission at 0.9x measured capacity: a tight fixed bound
  // defers without bound (the backlog tracks the whole remaining stream),
  // AIMD opens the quota while behind and cuts back once caught up.
  Table admission({"graph", "arrivals", "policy", "rate", "committed",
                   "deferrals", "peak_backlog", "mean_backlog", "makespan",
                   "final_quota", "raises", "cuts"});
  {
    // Bursty arrivals (32 at once) are where a fixed bound hurts: a tight
    // bound admits 8 per window and parks the rest of every burst.
    const double mu =
        measure_capacity(cluster.graph, cluster_metric, ArrivalModel::kBursty,
                         n);
    const double rate = 0.9 * mu;
    StreamingRuntimeOptions fixed;
    fixed.window = kWindow;
    fixed.max_live_admitted = 8;  // tight: well under one burst
    const StreamingRuntime frun = run_stream_opts(
        cluster.graph, cluster_metric, ArrivalModel::kBursty, rate, n, fixed);
    StreamingRuntimeOptions aimd;
    aimd.window = kWindow;
    aimd.admission.policy = AdmissionPolicy::kAimd;
    aimd.admission.min_live = 8;  // same starting bound as the fixed run
    aimd.admission.increase = 8;
    aimd.admission.decrease = 0.5;
    const StreamingRuntime arun = run_stream_opts(
        cluster.graph, cluster_metric, ArrivalModel::kBursty, rate, n, aimd);
    for (const StreamingRuntime* rt : {&frun, &arun}) {
      const StreamStats& st = rt->stats();
      admission.add_row("cluster4x8", "bursty",
                        rt->admission().name(), rate, st.committed,
                        st.deferrals, st.peak_backlog, st.mean_backlog,
                        static_cast<double>(st.makespan),
                        rt->admission().quota(), rt->admission().raises(),
                        rt->admission().cuts());
    }
    DTM_REQUIRE(arun.stats().committed == n,
                "adaptive admission failed to drain the stream");
    DTM_REQUIRE(arun.stats().peak_backlog < frun.stats().peak_backlog &&
                    arun.stats().deferrals < frun.stats().deferrals,
                "AIMD did not beat the tight fixed bound at 0.9x capacity: "
                    << "peak " << arun.stats().peak_backlog << " vs "
                    << frun.stats().peak_backlog << ", deferrals "
                    << arun.stats().deferrals << " vs "
                    << frun.stats().deferrals);
  }
  benchutil::emit_table("admission", admission);
}

// --- E24: admission policy by latency distribution ----------------------

/// Fixed-vs-AIMD admission restated in the units users feel: the
/// arrival->commit latency distribution at 0.9x measured capacity. E23
/// already shows the backlog/deferral win; here the same two runs are
/// compared by p50/p95/p99 of the per-transaction latency histograms the
/// MetricsRegistry records (nearest-rank bucket lower bounds, so every
/// cell is a deterministic integer). Goes into its own artifact
/// (--latency-json) with a committed CI-gated baseline.
void print_latency_series(bool smoke) {
  benchutil::print_header(
      "E24 — admission policy by arrival->commit latency (metrics layer)",
      "fixed tight bound vs AIMD on bursty arrivals at 0.9x measured "
      "capacity, compared by per-transaction latency percentiles");

  const std::size_t n = smoke ? 200 : 500;
  const ClusterGraph cluster(4, 8, 16);
  const DenseMetric cluster_metric(cluster.graph);
  MetricsRegistry& mreg = MetricsRegistry::global();

  const double mu = measure_capacity(cluster.graph, cluster_metric,
                                     ArrivalModel::kBursty, n);
  const double rate = 0.9 * mu;

  Table latency({"graph", "arrivals", "policy", "rate", "committed", "count",
                 "mean", "p50", "p95", "p99", "max"});
  StreamingRuntimeOptions fixed;
  fixed.window = kWindow;
  fixed.max_live_admitted = 8;  // E23's tight bound: well under one burst
  StreamingRuntimeOptions aimd;
  aimd.window = kWindow;
  aimd.admission.policy = AdmissionPolicy::kAimd;
  aimd.admission.min_live = 8;
  aimd.admission.increase = 8;
  aimd.admission.decrease = 0.5;

  std::uint64_t fixed_p99 = 0, aimd_p99 = 0;
  const std::pair<const char*, const StreamingRuntimeOptions*> policies[] = {
      {"fixed", &fixed}, {"aimd", &aimd}};
  for (const auto& [policy, opts] : policies) {
    // One histogram set per measured run (capacity probes above and the
    // other policy's run must not bleed into the distribution).
    mreg.reset();
    const StreamingRuntime rt = run_stream_opts(
        cluster.graph, cluster_metric, ArrivalModel::kBursty, rate, n, *opts);
    const MetricsSnapshot snap = mreg.snapshot();
    const auto it = snap.histograms.find("stream.latency.arrival_to_commit");
    DTM_REQUIRE(it != snap.histograms.end(),
                "stream run recorded no arrival_to_commit histogram");
    const HistogramSnapshot& h = it->second;
    latency.add_row("cluster4x8", "bursty", policy, rate,
                    rt.stats().committed, h.count, h.mean(), h.percentile(50),
                    h.percentile(95), h.percentile(99), h.max);
    (policy == std::string("fixed") ? fixed_p99 : aimd_p99) =
        h.percentile(99);
  }
  // The E23 deferral win restated as tail latency: opening the quota under
  // a backlog must shorten the p99 wait, not just the deferral count.
  DTM_REQUIRE(aimd_p99 < fixed_p99,
              "AIMD p99 arrival->commit latency " << aimd_p99
                  << " not below the tight fixed bound's " << fixed_p99);
  benchutil::emit_table("latency", latency);
}

void BM_StreamPipeline(benchmark::State& state) {
  const Grid grid(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(grid.graph);
  for (auto _ : state) {
    StreamingRuntimeOptions opts;
    opts.window = kWindow;
    StreamingRuntime rt(grid.graph, metric,
                        StreamingRuntime::spread_homes(grid.graph, kObjects),
                        opts);
    auto src = make_arrival_source(ArrivalModel::kPoisson, grid.graph,
                                   stream_options(256, 1.0), kSeed);
    rt.ingest_all(*src);
    rt.drain();
    benchmark::DoNotOptimize(rt.stats().makespan);
  }
}
BENCHMARK(BM_StreamPipeline)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_Optimistic(benchmark::State& state) {
  const Grid grid(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(grid.graph);
  const auto [inst, arrival] =
      materialize_stream(grid.graph, ArrivalModel::kPoisson, 1.0, 256);
  for (auto _ : state) {
    const OptimisticResult r = run_optimistic(inst, metric, arrival);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_Optimistic)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_ShardedWindow(benchmark::State& state) {
  const ClusterGraph cluster(4, 8, 16);
  const DenseMetric metric(cluster.graph);
  const ShardMap map = make_shard_map(cluster.graph, 4);
  const std::vector<NodeId> homes = shard_aligned_homes(map, 64);
  for (auto _ : state) {
    const StreamingRuntime rt = run_group_local(
        cluster.graph, metric, homes,
        static_cast<std::size_t>(state.range(0)), 2000, 64, 4.0, 128);
    benchmark::DoNotOptimize(rt.stats().makespan);
  }
}
BENCHMARK(BM_ShardedWindow)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = dtm::benchutil::strip_flag(argc, argv, "--smoke");
  const std::string shard_json =
      dtm::benchutil::strip_value_flag(argc, argv, "--shard-json");
  const std::string latency_json =
      dtm::benchutil::strip_value_flag(argc, argv, "--latency-json");
  const std::string metrics_out =
      dtm::benchutil::strip_value_flag(argc, argv, "--metrics-out");
  dtm::benchutil::BenchMain bm("stream", argc, argv);
  // The stream bench always records metrics (every artifact embeds its
  // informational gauge/histogram snapshot, and E24's series cells come
  // from the latency histograms); the registry stays disabled everywhere
  // else, preserving the one-relaxed-load cost contract.
  dtm::MetricsRegistry::global().set_enabled(true);
  print_series(smoke);
  bm.write_artifact();

  // E23 goes into its own artifact: drop the E22 series and counters so
  // BENCH_stream_shard.json reflects only the sharded sweep.
  dtm::benchutil::BenchReport::instance().clear();
  dtm::TelemetryRegistry::global().reset();
  dtm::MetricsRegistry::global().reset();
  print_shard_series(smoke);
  if (!shard_json.empty()) {
    std::ofstream out(shard_json);
    DTM_REQUIRE(out.good(), "cannot open --shard-json file " << shard_json);
    out << dtm::benchutil::BenchReport::instance().to_json("stream_shard",
                                                           bm.invocation())
        << '\n';
    std::cout << "\nwrote " << shard_json << "\n";
  }

  // E24 likewise (BENCH_stream_latency.json): latency-distribution cells
  // from the metrics histograms.
  dtm::benchutil::BenchReport::instance().clear();
  dtm::TelemetryRegistry::global().reset();
  dtm::MetricsRegistry::global().reset();
  print_latency_series(smoke);
  if (!latency_json.empty()) {
    std::ofstream out(latency_json);
    DTM_REQUIRE(out.good(),
                "cannot open --latency-json file " << latency_json);
    out << dtm::benchutil::BenchReport::instance().to_json("stream_latency",
                                                           bm.invocation())
        << '\n';
    std::cout << "\nwrote " << latency_json << "\n";
  }

  // --metrics-out FILE: one dedicated AIMD bursty run (fixed rate, so no
  // capacity probes pollute the time series) exported as dtm-metrics-v1
  // JSONL — the file CI pipes through stream_report --validate.
  if (!metrics_out.empty()) {
    dtm::MetricsRegistry::global().reset();
    dtm::StreamingRuntimeOptions opts;
    opts.window = kWindow;
    opts.admission.policy = dtm::AdmissionPolicy::kAimd;
    opts.admission.min_live = 8;
    opts.admission.increase = 8;
    opts.admission.decrease = 0.5;
    const dtm::ClusterGraph cluster(4, 8, 16);
    const dtm::DenseMetric metric(cluster.graph);
    run_stream_opts(cluster.graph, metric, dtm::ArrivalModel::kBursty, 1.2,
                    smoke ? 200 : 500, opts);
    std::ofstream out(metrics_out);
    DTM_REQUIRE(out.good(),
                "cannot open --metrics-out file " << metrics_out);
    out << dtm::MetricsRegistry::global().snapshot().to_jsonl();
    std::cout << "\nwrote " << metrics_out << "\n";
  }
  dtm::MetricsRegistry::global().set_enabled(false);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
