// E22 — streaming runtime (ROADMAP item 2 / open question #1): sustained
// throughput and backlog under continual arrivals, window-batched
// scheduling vs the TL2-style optimistic baseline.
//
// Series:
//  * capacity  — per (topology, arrival model): service capacity mu of the
//    window-batched StreamingRuntime, measured by overloading the runtime
//    (arrivals well above what it sustains, spread across many windows so
//    the measurement includes per-window object-transition overhead).
//  * backlog   — runs at 0.5x and 0.8x that measured capacity, at stream
//    lengths n and 2n. Bounded backlog means doubling the stream leaves
//    the peak backlog essentially unchanged (steady state) instead of
//    doubling it (divergence); the bench REQUIREs this at both factors, so
//    the CI gate is semantic, not just cell-identity.
//  * throughput — sustained txns/step at 0.8x capacity: scheduler vs the
//    optimistic executor on the identical stream (same arrivals, homes,
//    and read sets), plus the optimistic abort/wasted-work cost.
//
// Expected shape: the scheduler sustains higher throughput than the
// optimistic baseline on contended streams (hot-object especially, where
// validation aborts burn work) while keeping backlog flat below capacity.
//
// --smoke runs the reduced stream lengths; the recorded BENCH_stream.json
// baseline is the smoke artifact so CI can re-run and diff it cheaply.
#include "bench_common.hpp"

#include "core/online.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "sim/optimistic.hpp"
#include "sim/runtime.hpp"

namespace {

using namespace dtm;

constexpr std::size_t kObjects = 8;
constexpr std::size_t kObjectsPerTxn = 2;
constexpr Time kWindow = 64;
constexpr std::uint64_t kSeed = 5;

ArrivalStreamOptions stream_options(std::size_t n, double rate) {
  ArrivalStreamOptions opt;
  opt.num_txns = n;
  opt.num_objects = kObjects;
  opt.objects_per_txn = kObjectsPerTxn;
  opt.rate = rate;
  return opt;
}

StreamingRuntime run_stream(const Graph& g, const Metric& m,
                            ArrivalModel model, double rate, std::size_t n) {
  StreamingRuntimeOptions opts;
  opts.window = kWindow;
  StreamingRuntime rt(g, m, StreamingRuntime::spread_homes(g, kObjects),
                      opts);
  auto src = make_arrival_source(model, g, stream_options(n, rate), kSeed);
  rt.ingest_all(*src);
  rt.drain();
  const auto vr =
      validate_online(rt.materialize(), m, rt.arrivals(), rt.schedule());
  DTM_REQUIRE(vr.ok, "infeasible streaming schedule: " << vr.summary());
  return rt;
}

/// The identical stream as an offline instance + arrival vector, for the
/// optimistic executor (streams revisit nodes, hence shared homes).
std::pair<Instance, ArrivalTimes> materialize_stream(const Graph& g,
                                                     ArrivalModel model,
                                                     double rate,
                                                     std::size_t n) {
  InstanceBuilder b(g, kObjects);
  b.allow_shared_homes();
  ArrivalTimes arrival;
  auto src = make_arrival_source(model, g, stream_options(n, rate), kSeed);
  ArrivingTxn t;
  while (src->next(t)) {
    b.add_transaction(t.home, t.objects);
    arrival.push_back(t.arrival);
  }
  const std::vector<NodeId> homes =
      StreamingRuntime::spread_homes(g, kObjects);
  for (ObjectId o = 0; o < kObjects; ++o) b.set_object_home(o, homes[o]);
  return {b.build(), std::move(arrival)};
}

/// Measured capacity: the highest rate the runtime actually services. The
/// overload throughput alone overstates it — overloaded windows carry far
/// larger batches than steady state, and bigger batches amortize the
/// per-window object transition better — so iterate to the fixed point:
/// feed at the current estimate, and if the achieved throughput falls
/// short (service-limited, backlog building), the achieved value becomes
/// the new estimate. Converges once the runtime sustains the offered rate.
double measure_capacity(const Graph& g, const Metric& m, ArrivalModel model,
                        std::size_t n) {
  double mu = run_stream(g, m, model, 2.0, n).stats().throughput;
  for (int i = 0; i < 6; ++i) {
    const double achieved = run_stream(g, m, model, mu, n).stats().throughput;
    if (achieved >= 0.97 * mu) break;
    mu = achieved;
  }
  return mu;
}

const char* model_name(ArrivalModel model) {
  switch (model) {
    case ArrivalModel::kPoisson: return "poisson";
    case ArrivalModel::kBursty: return "bursty";
    case ArrivalModel::kHotObject: return "hot";
  }
  return "?";
}

void print_series(bool smoke) {
  benchutil::print_header(
      "E22 — streaming runtime (open question #1)",
      "window-batched incremental scheduling under continual arrivals: "
      "measured capacity, backlog boundedness at 0.5x/0.8x capacity, and "
      "sustained throughput vs the TL2-style optimistic baseline");

  const std::size_t n = smoke ? 200 : 500;
  const Grid grid(6);
  const DenseMetric grid_metric(grid.graph);
  const ClusterGraph cluster(4, 8, 16);
  const DenseMetric cluster_metric(cluster.graph);
  const std::tuple<const char*, const Graph&, const Metric&> topologies[] = {
      {"grid6", grid.graph, grid_metric},
      {"cluster4x8", cluster.graph, cluster_metric},
  };
  const ArrivalModel models[] = {ArrivalModel::kPoisson,
                                 ArrivalModel::kBursty,
                                 ArrivalModel::kHotObject};

  Table capacity({"graph", "arrivals", "window", "txns", "capacity"});
  Table backlog({"graph", "arrivals", "factor", "rate", "peak(n)",
                 "peak(2n)", "mean(2n)"});
  Table throughput({"graph", "arrivals", "executor", "rate", "committed",
                    "makespan", "throughput", "aborts", "wasted"});

  for (const auto& [gname, g, metric] : topologies) {
    for (ArrivalModel model : models) {
      const double mu = measure_capacity(g, metric, model, n);
      capacity.add_row(gname, model_name(model), kWindow, n, mu);

      for (double factor : {0.5, 0.8}) {
        const double rate = factor * mu;
        const StreamingRuntime one = run_stream(g, metric, model, rate, n);
        const StreamingRuntime two =
            run_stream(g, metric, model, rate, 2 * n);
        DTM_REQUIRE(one.stats().committed == n &&
                        two.stats().committed == 2 * n,
                    "stream did not fully commit");
        // Bounded backlog: steady state, not linear growth in the stream.
        const auto peak1 = static_cast<double>(one.stats().peak_backlog);
        const auto peak2 = static_cast<double>(two.stats().peak_backlog);
        DTM_REQUIRE(peak2 < 1.5 * peak1 + 16.0,
                    "backlog diverges at " << factor << "x capacity on "
                                           << gname << "/"
                                           << model_name(model) << ": peak "
                                           << peak1 << " -> " << peak2);
        backlog.add_row(gname, model_name(model), factor, rate,
                        one.stats().peak_backlog, two.stats().peak_backlog,
                        two.stats().mean_backlog);

        if (factor == 0.8) {
          throughput.add_row(gname, model_name(model), "stream-batch", rate,
                             two.stats().committed,
                             static_cast<double>(two.stats().makespan),
                             two.stats().throughput, 0, 0);
          const auto [inst, arrival] =
              materialize_stream(g, model, rate, 2 * n);
          OptimisticOptions oopts;
          oopts.seed = kSeed;
          const OptimisticResult r =
              run_optimistic(inst, metric, arrival, oopts);
          DTM_REQUIRE(r.ok, "optimistic baseline failed: " << r.error);
          throughput.add_row(gname, model_name(model), "tl2-optimistic",
                             rate, r.commits,
                             static_cast<double>(r.makespan), r.throughput,
                             r.aborts, static_cast<double>(r.wasted_steps));
        }
      }
    }
  }
  benchutil::emit_table("capacity", capacity);
  benchutil::emit_table("backlog", backlog);
  benchutil::emit_table("throughput", throughput);
}

void BM_StreamPipeline(benchmark::State& state) {
  const Grid grid(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(grid.graph);
  for (auto _ : state) {
    StreamingRuntimeOptions opts;
    opts.window = kWindow;
    StreamingRuntime rt(grid.graph, metric,
                        StreamingRuntime::spread_homes(grid.graph, kObjects),
                        opts);
    auto src = make_arrival_source(ArrivalModel::kPoisson, grid.graph,
                                   stream_options(256, 1.0), kSeed);
    rt.ingest_all(*src);
    rt.drain();
    benchmark::DoNotOptimize(rt.stats().makespan);
  }
}
BENCHMARK(BM_StreamPipeline)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

void BM_Optimistic(benchmark::State& state) {
  const Grid grid(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(grid.graph);
  const auto [inst, arrival] =
      materialize_stream(grid.graph, ArrivalModel::kPoisson, 1.0, 256);
  for (auto _ : state) {
    const OptimisticResult r = run_optimistic(inst, metric, arrival);
    benchmark::DoNotOptimize(r.makespan);
  }
}
BENCHMARK(BM_Optimistic)->Arg(6)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = dtm::benchutil::strip_flag(argc, argv, "--smoke");
  dtm::benchutil::BenchMain bm("stream", argc, argv);
  print_series(smoke);
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
