// E3 — Theorem 2 + Fig. 1 (Line): the two-phase line schedule is
// asymptotically optimal (within a constant of ℓ, the longest object walk).
//
// Series: makespan vs ℓ across sizes and k; the ratio makespan/ℓ must stay
// <= 4 and be flat in n. A global greedy baseline shows what the
// specialized schedule buys.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/line.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void print_series() {
  benchutil::print_header(
      "E3 / Theorem 2 — Line",
      "two-phase schedule runs in <= 4ℓ steps (asymptotically optimal); "
      "ratio vs the certified LB should be a flat constant <= ~4");
  Table table({"n", "k", "algo", "LB(mean)", "makespan(mean)", "ratio(mean)",
               "ratio(max)", "paper bound"});
  for (std::size_t n : {64u, 256u, 1024u}) {
    const Line topo(n);
    const DenseMetric metric(topo.graph);
    for (std::size_t k : {1u, 2u, 4u}) {
      const auto make_inst = [&](std::uint64_t seed) {
        Rng rng(seed);
        return generate_uniform(topo.graph,
                                {.num_objects = 16, .objects_per_txn = k},
                                rng);
      };
      const auto line_summary = benchutil::run_trials(
          metric, make_inst,
          [&](const Instance& inst, std::uint64_t seed) {
            return make_scheduler_for(inst, "line", seed);
          },
          /*trials=*/5, /*seed0=*/90 * n + k);
      table.add_row(n, k, "line(§4)", line_summary.lower_bound.mean(),
                    line_summary.makespan.mean(), line_summary.ratio.mean(),
                    line_summary.ratio.max(), "4ℓ");
      const auto greedy_summary = benchutil::run_trials(
          metric, make_inst,
          [&](const Instance& inst, std::uint64_t seed) {
            return make_scheduler_for(inst, "greedy-paper", seed);
          },
          /*trials=*/5, /*seed0=*/90 * n + k);
      table.add_row(n, k, "greedy(§2.3)", greedy_summary.lower_bound.mean(),
                    greedy_summary.makespan.mean(),
                    greedy_summary.ratio.mean(), greedy_summary.ratio.max(),
                    "O(k·ℓ·h_max)");
    }
  }
  benchutil::emit_table("main", table);
}

void BM_LineScheduler(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Line topo(n);
  const DenseMetric metric(topo.graph);
  Rng rng(5);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    auto sched = make_scheduler_for(inst, "line");
    const Schedule s = sched->run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_LineScheduler)->Arg(64)->Arg(256)->Arg(1024)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("line", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
