// E11 — substrate microbenchmarks: APSP (sequential vs thread pool),
// single-source search, dependency-graph construction, greedy coloring,
// the earliest-time precedence solver, and simulator throughput.
//
// The printed series reports *counted work* (telemetry counter deltas) per
// substrate operation — the complement of the google-benchmark wall times.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "core/precedence.hpp"
#include "graph/apsp.hpp"
#include "graph/metric.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/hypercube.hpp"
#include "sched/dependency_graph.hpp"
#include "sched/greedy.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace dtm;

void BM_ApspSequential(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const DistanceMatrix m = compute_apsp(topo.graph);
    benchmark::DoNotOptimize(m.num_nodes());
  }
}
BENCHMARK(BM_ApspSequential)->Arg(16)->Arg(32)->Arg(48)->Unit(
    benchmark::kMillisecond);

void BM_ApspParallel(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  ThreadPool pool;
  for (auto _ : state) {
    const DistanceMatrix m = compute_apsp(topo.graph, &pool);
    benchmark::DoNotOptimize(m.num_nodes());
  }
}
BENCHMARK(BM_ApspParallel)->Arg(16)->Arg(32)->Arg(48)->Unit(
    benchmark::kMillisecond);

void BM_SingleSourceBfs(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const auto t = single_source(topo.graph, 0);
    benchmark::DoNotOptimize(t.dist.data());
  }
}
BENCHMARK(BM_SingleSourceBfs)->Arg(32)->Arg(64)->Unit(
    benchmark::kMicrosecond);

void BM_DenseMetricQuery(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric m(topo.graph);
  NodeId u = 0, v = 1;
  const auto n = static_cast<NodeId>(topo.graph.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.distance(u, v));
    u = (u + 7) % n;
    v = (v + 13) % n;
  }
}
BENCHMARK(BM_DenseMetricQuery)->Arg(16)->Arg(48)->Unit(
    benchmark::kNanosecond);

void BM_LazyMetricQueryCachedSource(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  const LazyMetric m(topo.graph);
  (void)m.distance(0, 1);  // warm the single source
  NodeId v = 1;
  const auto n = static_cast<NodeId>(topo.graph.num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.distance(0, v));
    v = (v + 13) % n;
  }
}
BENCHMARK(BM_LazyMetricQueryCachedSource)->Arg(16)->Arg(48)->Unit(
    benchmark::kNanosecond);

void BM_DependencyGraphBuild(benchmark::State& state) {
  const Hypercube topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 32, .objects_per_txn = 4}, rng);
  for (auto _ : state) {
    const DependencyGraph h = build_dependency_graph(inst, metric);
    benchmark::DoNotOptimize(h.max_degree);
  }
}
BENCHMARK(BM_DependencyGraphBuild)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

void BM_GreedyColoring(benchmark::State& state) {
  const Hypercube topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(4);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 32, .objects_per_txn = 4}, rng);
  std::vector<TxnId> all(inst.num_transactions());
  for (TxnId t = 0; t < all.size(); ++t) all[t] = t;
  for (auto _ : state) {
    const ColoredSubset cs =
        greedy_color(inst, metric, all, ColoringRule::kFirstFit);
    benchmark::DoNotOptimize(cs.duration);
  }
}
BENCHMARK(BM_GreedyColoring)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMillisecond);

void BM_PrecedenceSolver(benchmark::State& state) {
  const Hypercube topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(5);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 32, .objects_per_txn = 4}, rng);
  std::vector<std::vector<TxnId>> orders(inst.num_objects());
  for (ObjectId o = 0; o < inst.num_objects(); ++o) {
    orders[o] = inst.requesters(o);
  }
  for (auto _ : state) {
    const auto times = earliest_commit_times(inst, metric, orders);
    benchmark::DoNotOptimize(times.data());
  }
}
BENCHMARK(BM_PrecedenceSolver)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMicrosecond);

void BM_Simulator(benchmark::State& state) {
  const Hypercube topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(6);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 32, .objects_per_txn = 4}, rng);
  GreedyOptions opts;
  opts.rule = ColoringRule::kFirstFit;
  GreedyScheduler sched(opts);
  const Schedule s = sched.run(inst, metric);
  for (auto _ : state) {
    const SimResult r = simulate(inst, metric, s);
    benchmark::DoNotOptimize(r.realized_makespan);
    DTM_ASSERT(r.ok);
  }
}
BENCHMARK(BM_Simulator)->Arg(6)->Arg(8)->Arg(10)->Unit(
    benchmark::kMicrosecond);

/// Counted-work series: run each substrate op once on a fixed workload and
/// report how much work the telemetry counters observed.
void print_series() {
  benchutil::print_header(
      "E11 — substrate counted work",
      "counter deltas per substrate operation (grid 32x32, hypercube dim 8; "
      "see google-benchmark section for wall times)");
  TelemetryRegistry& reg = TelemetryRegistry::global();
  Table table({"operation", "counter", "delta"});
  const auto delta = [&](const std::string& counter_name,
                         const std::string& op,
                         const std::function<void()>& body) {
    const std::uint64_t before = reg.snapshot().counters[counter_name];
    body();
    const std::uint64_t after = reg.snapshot().counters[counter_name];
    table.add_row(op, counter_name, after - before);
  };

  const Grid grid(32);
  const Hypercube cube(8);
  delta("apsp.dijkstra_runs", "compute_apsp(grid32)",
        [&] { compute_apsp(grid.graph); });
  const DenseMetric metric(cube.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      cube.graph, {.num_objects = 32, .objects_per_txn = 4}, rng);
  delta("metric.distance_queries", "build_dependency_graph(cube8)",
        [&] { (void)build_dependency_graph(inst, metric); });
  std::vector<TxnId> all(inst.num_transactions());
  for (TxnId t = 0; t < all.size(); ++t) all[t] = t;
  delta("greedy.color_probes", "greedy_color(cube8)",
        [&] { (void)greedy_color(inst, metric, all, ColoringRule::kFirstFit); });
  GreedyOptions gopts;
  gopts.rule = ColoringRule::kFirstFit;
  GreedyScheduler sched(gopts);
  const Schedule s = sched.run(inst, metric);
  delta("sim.legs_moved", "simulate(cube8)",
        [&] { (void)simulate(inst, metric, s); });
  delta("metric.lazy_sssp_runs", "LazyMetric 8 sources (grid32)", [&] {
    const LazyMetric lazy(grid.graph);
    for (NodeId u = 0; u < 8; ++u) (void)lazy.distance(u, 100);
  });
  benchutil::emit_table("counted_work", table);
}

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("substrate", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
