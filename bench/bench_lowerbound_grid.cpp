// E7 — Theorem 6 + Fig. 5 (§8.1 grid construction): execution time cannot
// track the objects' TSP tour lengths.
#include <benchmark/benchmark.h>

#include "bench_lowerbound_common.hpp"

namespace {

using namespace dtm;

void BM_BuildLbGridInstance(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    const LowerBoundInstance li = make_lb_grid(s, rng);
    benchmark::DoNotOptimize(li.instance.num_transactions());
  }
}
BENCHMARK(BM_BuildLbGridInstance)->Arg(4)->Arg(9)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("lowerbound_grid", argc, argv);
  dtm::benchutil::lower_bound_series(
      "E7 / Theorem 6 — §8.1 grid-of-blocks construction", /*tree=*/false,
      {4, 9, 16, 25, 36});
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
