// Shared helpers for the experiment benches (DESIGN.md §3).
//
// Every bench binary does two things:
//  1. prints the experiment's paper-style series (a Table of parameters ->
//     lower bound, measured makespan, ratio, proven bound) over several
//     seeded trials — these are the rows recorded in EXPERIMENTS.md;
//  2. registers google-benchmark timings for the scheduler itself.
//
// Schedules are validated on every trial; an infeasible schedule aborts the
// bench (a benchmark of a wrong answer is meaningless).
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <string>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "lb/bounds.hpp"
#include "sched/scheduler.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace dtm::benchutil {

struct TrialSummary {
  Stats makespan;
  Stats lower_bound;
  Stats ratio;
  Stats communication;
};

/// Runs `trials` seeded repetitions: build instance -> schedule -> validate
/// -> bound -> accumulate. `make_instance(seed)` returns a fresh instance;
/// `make_scheduler(seed)` a fresh scheduler.
inline TrialSummary run_trials(
    const Metric& metric,
    const std::function<Instance(std::uint64_t)>& make_instance,
    const std::function<std::unique_ptr<Scheduler>(std::uint64_t)>&
        make_scheduler,
    int trials, std::uint64_t seed0) {
  TrialSummary out;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    const Instance inst = make_instance(seed);
    auto sched = make_scheduler(seed);
    const Schedule s = sched->run(inst, metric);
    const ValidationResult vr = validate(inst, metric, s);
    DTM_REQUIRE(vr.ok, "bench produced infeasible schedule: " << vr.summary());
    const InstanceBounds lb = compute_bounds(inst, metric);
    const auto mk = static_cast<double>(s.makespan());
    const auto bound = static_cast<double>(std::max<Time>(lb.makespan_lb, 1));
    out.makespan.add(mk);
    out.lower_bound.add(bound);
    out.ratio.add(mk / bound);
    out.communication.add(
        static_cast<double>(compute_metrics(inst, metric, s).communication));
  }
  return out;
}

/// Prints a section header so bench output reads like the paper's tables.
inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

}  // namespace dtm::benchutil
