// Shared helpers for the experiment benches (DESIGN.md §3).
//
// Every bench binary does three things:
//  1. prints the experiment's paper-style series (a Table of parameters ->
//     lower bound, measured makespan, ratio, proven bound) over several
//     seeded trials — these are the rows recorded in EXPERIMENTS.md;
//  2. registers google-benchmark timings for the scheduler itself;
//  3. with --json-out[=PATH], writes a machine-readable BENCH_<name>.json
//     artifact: the series rows plus the telemetry counters and phase-timer
//     percentiles accumulated while the series ran (EXPERIMENTS.md
//     documents the schema; tools/bench_compare diffs two artifacts).
//
// Schedules are validated on every trial; an infeasible schedule aborts the
// bench (a benchmark of a wrong answer is meaningless).
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "lb/bounds.hpp"
#include "sched/registry.hpp"
#include "sched/scheduler.hpp"
#include "sim/capacity_sim.hpp"
#include "trial_runner.hpp"
#include "util/args.hpp"
#include "util/json_writer.hpp"
#include "util/metrics.hpp"
#include "util/provenance.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace dtm::benchutil {

/// Prints a section header so bench output reads like the paper's tables.
inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Strips a boolean flag (e.g. --smoke) from argv before google-benchmark
/// parses the remainder; returns whether the flag was present.
inline bool strip_flag(int& argc, char** argv, const std::string& flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) {
      found = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return found;
}

/// Strips `--flag VALUE` / `--flag=VALUE` from argv before google-benchmark
/// parses the remainder; returns VALUE, or "" when the flag was absent.
inline std::string strip_value_flag(int& argc, char** argv,
                                    const std::string& flag) {
  std::string value;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string tok = argv[i];
    if (tok == flag) {
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      continue;
    }
    if (tok.rfind(flag + "=", 0) == 0) {
      value = tok.substr(flag.size() + 1);
      continue;
    }
    argv[out++] = argv[i];
  }
  argc = out;
  return value;
}

/// Seeded uniform-workload factory over a fixed graph — the instance shape
/// shared by the congestion/fault sweep benches (E13/E18/E19).
inline std::function<Instance(std::uint64_t)> uniform_workload(
    const Graph& g, std::size_t num_objects = 12,
    std::size_t objects_per_txn = 2) {
  return [&g, num_objects, objects_per_txn](std::uint64_t seed) {
    Rng rng(seed);
    return generate_uniform(
        g, {.num_objects = num_objects, .objects_per_txn = objects_per_txn},
        rng);
  };
}

/// Per-trial fault setup for a capacity sweep. Owns the FaultModel so the
/// non-owning pointer inside CapacitySimOptions stays valid for the whole
/// trial; a null model is the reliable substrate.
struct TrialFaults {
  std::unique_ptr<FaultModel> model;
  RecoveryPolicy recovery{};

  CapacitySimOptions options(std::size_t capacity) const {
    CapacitySimOptions o;
    o.capacity = capacity;
    o.faults = model.get();
    o.recovery = recovery;
    return o;
  }
};

/// Mean stats of one (workload, scheduler) capacity-sweep cell; every
/// vector is parallel to the capacity list passed to run_capacity_cell.
struct CapacityCellStats {
  std::string scheduler;  // registry display name
  std::vector<Stats> makespan;
  std::vector<Stats> queue_wait;
  std::vector<Stats> injected;
  std::vector<Stats> reroutes;
};

/// The capacity-sweep trial loop shared by E13b and E19: per seeded trial,
/// generate the workload, plan the schedule, then re-execute its visit
/// orders under every capacity in `capacities` (0 = unbounded).
/// `seed_schedulers` passes the trial seed to the registry (E18/E19 style);
/// false keeps the registry's default seed (E13b's historic behavior).
/// `faults_for`, when set, supplies the per-trial fault model/recovery.
inline CapacityCellStats run_capacity_cell(
    const Metric& metric,
    const std::function<Instance(std::uint64_t)>& make_inst,
    const std::string& sched_name, bool seed_schedulers,
    const std::vector<std::size_t>& capacities, int trials,
    const std::function<TrialFaults(std::uint64_t)>& faults_for = {}) {
  CapacityCellStats cell;
  cell.makespan.resize(capacities.size());
  cell.queue_wait.resize(capacities.size());
  cell.injected.resize(capacities.size());
  cell.reroutes.resize(capacities.size());
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(trials);
       ++seed) {
    const Instance inst = make_inst(seed);
    auto sched = seed_schedulers ? make_scheduler_for(inst, sched_name, seed)
                                 : make_scheduler_for(inst, sched_name);
    cell.scheduler = sched->name();
    const Schedule s = sched->run(inst, metric);
    const TrialFaults faults = faults_for ? faults_for(seed) : TrialFaults{};
    for (std::size_t i = 0; i < capacities.size(); ++i) {
      const CapacitySimResult r =
          simulate_with_capacity(inst, metric, s, faults.options(capacities[i]));
      DTM_REQUIRE(r.ok, "capacity sim failed: " << r.error);
      cell.makespan[i].add(static_cast<double>(r.makespan));
      cell.queue_wait[i].add(static_cast<double>(r.total_queue_wait));
      cell.injected[i].add(static_cast<double>(r.faults.injected));
      cell.reroutes[i].add(static_cast<double>(r.faults.reroutes));
    }
  }
  return cell;
}

/// Series tables recorded for the JSON artifact (one per emit_table call).
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport r;
    return r;
  }

  void add_table(const std::string& name, const Table& t) {
    tables_.push_back({name, t.header(), t.data()});
  }

  /// Drops every recorded series. A binary that emits a second artifact
  /// (e.g. bench_faults' E20 reschedule sweep) clears the report after the
  /// first write_artifact so the two JSON files do not share series.
  void clear() { tables_.clear(); }

  /// Serializes series + telemetry snapshot as the BENCH_<name>.json schema
  /// ("dtm-bench-v1", see EXPERIMENTS.md). The provenance object (git sha,
  /// build type, compiler, invocation) is informational: bench_compare
  /// ignores top-level keys it does not know.
  std::string to_json(const std::string& bench_name,
                      const std::string& invocation = "") const {
    const TelemetrySnapshot snap = TelemetryRegistry::global().snapshot();
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("dtm-bench-v1");
    w.key("bench").value(bench_name);
    w.key("provenance").begin_object();
    for (const auto& [k, v] : build_provenance()) w.key(k).value(v);
    if (!invocation.empty()) w.key("invocation").value(invocation);
    w.end_object();
    w.key("series").begin_array();
    for (const auto& t : tables_) {
      w.begin_object();
      w.key("name").value(t.name);
      w.key("header").begin_array();
      for (const auto& h : t.header) w.value(h);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& row : t.rows) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("counters").begin_object();
    for (const auto& [name, v] : snap.counters) {
      if (v > 0) w.key(name).value(v);
    }
    w.end_object();
    w.key("timers").begin_object();
    for (const auto& [name, ts] : snap.timers) {
      w.key(name).begin_object();
      w.key("count").value(ts.count);
      w.key("total_ns").value(ts.total_ns);
      w.key("mean_ns").value(ts.mean_ns);
      w.key("min_ns").value(ts.min_ns);
      w.key("max_ns").value(ts.max_ns);
      w.key("p50_ns").value(ts.p50_ns);
      w.key("p90_ns").value(ts.p90_ns);
      w.key("p95_ns").value(ts.p95_ns);
      w.key("p99_ns").value(ts.p99_ns);
      w.end_object();
    }
    w.end_object();
    // Informational memory row: peak RSS at artifact-write time.
    // bench_compare reports changes but never gates on them (machine- and
    // allocator-dependent); older artifacts without the block still load.
    w.key("rss").begin_object();
    w.key("peak_bytes").value(peak_rss_bytes());
    w.end_object();
    // Informational metrics block (benches that enable the MetricsRegistry
    // embed the final gauge/histogram snapshot; bench_compare reports
    // changes under metrics/ but never gates on them). Samples stay out —
    // they belong to the --metrics-out JSONL, not the bench artifact.
    if (MetricsRegistry::global().enabled()) {
      const MetricsSnapshot ms = MetricsRegistry::global().snapshot();
      w.key("metrics").begin_object();
      w.key("gauges").begin_object();
      for (const auto& [name, v] : ms.gauges) w.key(name).value(v);
      w.end_object();
      w.key("histograms").begin_object();
      for (const auto& [name, h] : ms.histograms) {
        w.key(name).begin_object();
        w.key("count").value(h.count);
        w.key("sum").value(h.sum);
        w.key("min").value(h.min);
        w.key("max").value(h.max);
        w.key("p50").value(h.percentile(50));
        w.key("p95").value(h.percentile(95));
        w.key("p99").value(h.percentile(99));
        w.end_object();
      }
      w.end_object();
      w.end_object();
    }
    w.end_object();
    return w.str();
  }

 private:
  struct Recorded {
    std::string name;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<Recorded> tables_;
};

/// Prints the table to stdout and records it as a named series for the
/// JSON artifact.
inline void emit_table(const std::string& name, const Table& t) {
  t.print(std::cout);
  BenchReport::instance().add_table(name, t);
}

/// Per-binary harness: parses --json-out[=PATH] through ArgParser and strips
/// it from argv before google-benchmark sees the remaining flags. Call
/// write_artifact() after the series ran (and before RunSpecifiedBenchmarks,
/// so the artifact only reflects deterministic series work).
class BenchMain {
 public:
  BenchMain(std::string bench_name, int& argc, char** argv)
      : name_(std::move(bench_name)) {
    invocation_ = argv[0] == nullptr ? name_ : std::string(argv[0]);
    for (int i = 1; i < argc; ++i) invocation_ += std::string(" ") + argv[i];
    const ArgParser args(argc, argv);
    if (args.has("json-out")) {
      json_path_ = args.get("json-out", "BENCH_" + name_ + ".json");
    }
    // Strip the flag (and its space-separated value) so that
    // benchmark::Initialize does not reject it as unrecognized.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok == "--json-out" || tok.rfind("--json-out=", 0) == 0) {
        if (tok == "--json-out" && i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
          ++i;  // skip the value token as well
        }
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }

  /// Writes BENCH_<name>.json when --json-out was given; no-op otherwise.
  void write_artifact() const {
    if (json_path_.empty()) return;
    std::ofstream out(json_path_);
    DTM_REQUIRE(out.good(), "cannot open --json-out file " << json_path_);
    out << BenchReport::instance().to_json(name_, invocation_) << '\n';
    std::cout << "\nwrote " << json_path_ << "\n";
  }

  const std::string& json_path() const { return json_path_; }
  const std::string& invocation() const { return invocation_; }

 private:
  std::string name_;
  std::string invocation_;
  std::string json_path_;  // empty = no artifact requested
};

}  // namespace dtm::benchutil
