// Shared helpers for the experiment benches (DESIGN.md §3).
//
// Every bench binary does three things:
//  1. prints the experiment's paper-style series (a Table of parameters ->
//     lower bound, measured makespan, ratio, proven bound) over several
//     seeded trials — these are the rows recorded in EXPERIMENTS.md;
//  2. registers google-benchmark timings for the scheduler itself;
//  3. with --json-out[=PATH], writes a machine-readable BENCH_<name>.json
//     artifact: the series rows plus the telemetry counters and phase-timer
//     percentiles accumulated while the series ran (EXPERIMENTS.md
//     documents the schema; tools/bench_compare diffs two artifacts).
//
// Schedules are validated on every trial; an infeasible schedule aborts the
// bench (a benchmark of a wrong answer is meaningless).
#pragma once

#include <benchmark/benchmark.h>

#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "lb/bounds.hpp"
#include "sched/scheduler.hpp"
#include "trial_runner.hpp"
#include "util/args.hpp"
#include "util/json_writer.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/telemetry.hpp"

namespace dtm::benchutil {

/// Prints a section header so bench output reads like the paper's tables.
inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::cout << "\n=== " << experiment << " ===\n" << claim << "\n\n";
}

/// Series tables recorded for the JSON artifact (one per emit_table call).
class BenchReport {
 public:
  static BenchReport& instance() {
    static BenchReport r;
    return r;
  }

  void add_table(const std::string& name, const Table& t) {
    tables_.push_back({name, t.header(), t.data()});
  }

  /// Serializes series + telemetry snapshot as the BENCH_<name>.json schema
  /// ("dtm-bench-v1", see EXPERIMENTS.md).
  std::string to_json(const std::string& bench_name) const {
    const TelemetrySnapshot snap = TelemetryRegistry::global().snapshot();
    JsonWriter w;
    w.begin_object();
    w.key("schema").value("dtm-bench-v1");
    w.key("bench").value(bench_name);
    w.key("series").begin_array();
    for (const auto& t : tables_) {
      w.begin_object();
      w.key("name").value(t.name);
      w.key("header").begin_array();
      for (const auto& h : t.header) w.value(h);
      w.end_array();
      w.key("rows").begin_array();
      for (const auto& row : t.rows) {
        w.begin_array();
        for (const auto& cell : row) w.value(cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_array();
    w.key("counters").begin_object();
    for (const auto& [name, v] : snap.counters) {
      if (v > 0) w.key(name).value(v);
    }
    w.end_object();
    w.key("timers").begin_object();
    for (const auto& [name, ts] : snap.timers) {
      w.key(name).begin_object();
      w.key("count").value(ts.count);
      w.key("total_ns").value(ts.total_ns);
      w.key("mean_ns").value(ts.mean_ns);
      w.key("min_ns").value(ts.min_ns);
      w.key("max_ns").value(ts.max_ns);
      w.key("p50_ns").value(ts.p50_ns);
      w.key("p90_ns").value(ts.p90_ns);
      w.key("p99_ns").value(ts.p99_ns);
      w.end_object();
    }
    w.end_object();
    w.end_object();
    return w.str();
  }

 private:
  struct Recorded {
    std::string name;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
  };
  std::vector<Recorded> tables_;
};

/// Prints the table to stdout and records it as a named series for the
/// JSON artifact.
inline void emit_table(const std::string& name, const Table& t) {
  t.print(std::cout);
  BenchReport::instance().add_table(name, t);
}

/// Per-binary harness: parses --json-out[=PATH] through ArgParser and strips
/// it from argv before google-benchmark sees the remaining flags. Call
/// write_artifact() after the series ran (and before RunSpecifiedBenchmarks,
/// so the artifact only reflects deterministic series work).
class BenchMain {
 public:
  BenchMain(std::string bench_name, int& argc, char** argv)
      : name_(std::move(bench_name)) {
    const ArgParser args(argc, argv);
    if (args.has("json-out")) {
      json_path_ = args.get("json-out", "BENCH_" + name_ + ".json");
    }
    // Strip the flag (and its space-separated value) so that
    // benchmark::Initialize does not reject it as unrecognized.
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok == "--json-out" || tok.rfind("--json-out=", 0) == 0) {
        if (tok == "--json-out" && i + 1 < argc &&
            std::string(argv[i + 1]).rfind("--", 0) != 0) {
          ++i;  // skip the value token as well
        }
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }

  /// Writes BENCH_<name>.json when --json-out was given; no-op otherwise.
  void write_artifact() const {
    if (json_path_.empty()) return;
    std::ofstream out(json_path_);
    DTM_REQUIRE(out.good(), "cannot open --json-out file " << json_path_);
    out << BenchReport::instance().to_json(name_) << '\n';
    std::cout << "\nwrote " << json_path_ << "\n";
  }

  const std::string& json_path() const { return json_path_; }

 private:
  std::string name_;
  std::string json_path_;  // empty = no artifact requested
};

}  // namespace dtm::benchutil
