// E10 — ablation of Algorithm 1's round budget: the paper reserves
// ζ = 2·40^k⌈ln^{k+1} m⌉ rounds per phase (a w.h.p. worst case); the
// implementation stops as soon as a phase's transactions commit
// (DESIGN.md §4.5). This bench measures how many rounds are actually used
// and how often the derandomized fallback fires.
#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "core/generators.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "sched/cluster.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace dtm;

void print_series() {
  std::cout << "\n=== E10 — Algorithm 1 round budget ablation ===\n"
               "rounds actually needed vs the theoretical per-phase budget "
               "ζ = 2·40^k·⌈ln^{k+1} m⌉\n\n";
  Table table({"alpha", "beta", "k", "sigma", "phases", "rounds(mean)",
               "rounds(max)", "forced(mean)", "zeta(theory)"});
  const std::size_t alpha = 8;
  for (std::size_t beta : {4u, 8u}) {
    for (std::size_t k : {1u, 2u}) {
      for (std::size_t sigma : {2u, 4u, 8u}) {
        const ClusterGraph topo(alpha, beta, static_cast<Weight>(beta));
        const DenseMetric metric(topo.graph);
        Stats rounds, forced, phases;
        for (std::uint64_t seed = 1; seed <= 10; ++seed) {
          Rng rng(seed * 71 + sigma);
          const Instance inst =
              generate_cluster_spread(topo, 3 * alpha, k, sigma, rng);
          auto sched = make_scheduler_for(inst, "cluster-random", seed);
          const Schedule s = sched->run(inst, metric);
          DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
          // The registry wrapper exposes the concrete scheduler (and its
          // post-run round stats) through underlying().
          const auto& cs =
              dynamic_cast<const ClusterScheduler&>(*sched->underlying());
          rounds.add(static_cast<double>(cs.last_stats().total_rounds));
          forced.add(static_cast<double>(cs.last_stats().forced_rounds));
          phases.add(static_cast<double>(cs.last_stats().phases));
        }
        const double m = static_cast<double>(
            std::max(topo.num_nodes(), std::size_t{3} * alpha));
        const double zeta =
            2.0 * std::pow(40.0, static_cast<double>(k)) *
            std::ceil(std::pow(std::log(m), static_cast<double>(k + 1)));
        table.add_row(alpha, beta, k, sigma, phases.mean(), rounds.mean(),
                      rounds.max(), forced.mean(), zeta);
      }
    }
  }
  benchutil::emit_table("main", table);
  std::cout << "\n(early termination is Las-Vegas-safe: feasibility never "
               "depends on the round budget)\n";
}

void BM_RandomizedRounds(benchmark::State& state) {
  const auto sigma = static_cast<std::size_t>(state.range(0));
  const ClusterGraph topo(8, 4, 4);
  const DenseMetric metric(topo.graph);
  Rng rng(5);
  const Instance inst = generate_cluster_spread(topo, 24, 2, sigma, rng);
  for (auto _ : state) {
    auto sched = make_scheduler_for(inst, "cluster-random");
    const Schedule s = sched->run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_RandomizedRounds)->Arg(2)->Arg(4)->Arg(8)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("ablation_rounds", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
