// E15 — synchronicity factor (paper's conclusion: "if the system is not
// completely synchronous, then our bounds are affected by the synchronicity
// factor — maximum delay divided by minimum delay").
//
// Series: clique and hypercube with every edge weight jittered by a random
// factor in [1, F]; greedy's measured ratio vs F. Expected shape: the
// ratio grows at most linearly in the realized synchronicity factor (it is
// exactly the h_max/h_min degradation of the §2.3 weighted-coloring bound).
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/hypercube.hpp"
#include "graph/transform.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void series(const char* name, const Graph& base, Table& table) {
  for (Weight factor : {1, 2, 4, 8, 16}) {
    Stats ratio, realized;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      Rng jitter_rng(seed * 17);
      const Graph g = jitter_weights(base, factor, jitter_rng);
      const DenseMetric metric(g);
      Rng rng(seed * 29);
      const Instance inst = generate_uniform(
          g, {.num_objects = 8, .objects_per_txn = 2}, rng);
      GreedyOptions o;
      o.rule = ColoringRule::kFirstFit;
      GreedyScheduler sched(o);
      const Schedule s = sched.run(inst, metric);
      DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
      const InstanceBounds lb = compute_bounds(inst, metric);
      ratio.add(static_cast<double>(s.makespan()) /
                static_cast<double>(std::max<Time>(lb.makespan_lb, 1)));
      realized.add(synchronicity_factor(g));
    }
    table.add_row(name, factor, realized.mean(), ratio.mean(), ratio.max());
  }
}

void print_series() {
  benchutil::print_header(
      "E15 — synchronicity factor (conclusion remark)",
      "greedy ratio under heterogeneous link delays jittered in [1, F]; "
      "degradation should stay within ~the realized max/min delay factor");
  Table table({"topology", "jitter F", "realized factor", "ratio(mean)",
               "ratio(max)"});
  series("clique48", Clique(48).graph, table);
  series("hypercube64", Hypercube(6).graph, table);
  benchutil::emit_table("main", table);
}

void BM_JitteredGreedy(benchmark::State& state) {
  const auto factor = static_cast<Weight>(state.range(0));
  Rng jitter_rng(3);
  const Graph g = jitter_weights(Clique(64).graph, factor, jitter_rng);
  const DenseMetric metric(g);
  Rng rng(5);
  const Instance inst =
      generate_uniform(g, {.num_objects = 8, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    GreedyScheduler sched;
    const Schedule s = sched.run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_JitteredGreedy)->Arg(1)->Arg(8)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("synchronicity", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
