// E13 — link congestion (paper's open question #2: bounded-capacity links).
//
// The §2.1 model allows unlimited messages per link per step. This bench
// measures how hard each schedule leans on that assumption: the peak
// number of objects simultaneously crossing one link. A schedule with peak
// load L stretches by at most L on a serializing network, so small peaks
// mean the paper's bounds survive capacity limits nearly unchanged.
//
// Expected shape: the specialized schedules (line/grid) keep peaks low
// (objects move in disjoint regions); hub topologies (star center) and
// makespan-aggressive schedules concentrate load.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/line.hpp"
#include "graph/topologies/star.hpp"
#include "sched/registry.hpp"
#include "sim/capacity_sim.hpp"
#include "sim/congestion.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

// Schedulers come from the registry by name (default seed 1, matching the
// hand-constructed options this bench used before the registry existed).
void measure(const char* topology, const Graph& g, const Metric& metric,
             const std::function<Instance(std::uint64_t)>& make_inst,
             const std::string& sched_name, Table& table) {
  Stats makespan, peak, flow;
  std::string display_name;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Instance inst = make_inst(seed);
    auto sched = make_scheduler_for(inst, sched_name);
    display_name = sched->name();
    const Schedule s = sched->run(inst, metric);
    DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
    const CongestionReport r = analyze_congestion(inst, metric, s);
    makespan.add(static_cast<double>(s.makespan()));
    peak.add(static_cast<double>(r.peak_load));
    flow.add(static_cast<double>(r.total_flow));
  }
  table.add_row(topology, display_name, makespan.mean(), peak.mean(),
                peak.max(), flow.mean());
  (void)g;
}

void print_series() {
  benchutil::print_header(
      "E13 — link congestion under the unbounded-capacity model",
      "peak simultaneous objects per link; a peak of L means at most an "
      "L-fold stretch on serializing links");
  Table table({"topology", "scheduler", "makespan(mean)", "peak(mean)",
               "peak(max)", "flow(mean)"});
  {
    const Line topo(64);
    const DenseMetric metric(topo.graph);
    const auto make_inst = benchutil::uniform_workload(topo.graph);
    measure("line64", topo.graph, metric, make_inst, "line", table);
    measure("line64", topo.graph, metric, make_inst, "greedy-ff", table);
  }
  {
    const Grid topo(12);
    const DenseMetric metric(topo.graph);
    const auto make_inst = benchutil::uniform_workload(topo.graph);
    measure("grid12", topo.graph, metric, make_inst, "grid", table);
    measure("grid12", topo.graph, metric, make_inst, "greedy-ff", table);
    measure("grid12", topo.graph, metric, make_inst, "serial", table);
  }
  {
    const Star topo(8, 8);
    const DenseMetric metric(topo.graph);
    const auto make_inst = benchutil::uniform_workload(topo.graph);
    measure("star8x8", topo.graph, metric, make_inst, "star", table);
    measure("star8x8", topo.graph, metric, make_inst, "greedy-ff", table);
  }
  benchutil::emit_table("main", table);
}

void capacity_series() {
  benchutil::print_header(
      "E13b — realized makespan under bounded link capacity",
      "re-executing each policy's visit orders with FIFO links of capacity "
      "C; stretch = makespan(C) / makespan(unbounded)");
  Table table({"topology", "scheduler", "unbounded", "C=4", "C=2", "C=1",
               "stretch C=1"});
  // Capacity columns in the table's order; index 0 is the unbounded run.
  const std::vector<std::size_t> caps = {0, 4, 2, 1};
  auto run_capacities = [&](const char* topology, const Graph& g,
                            const Metric& metric,
                            const std::string& sched_name) {
    const benchutil::CapacityCellStats cell = benchutil::run_capacity_cell(
        metric, benchutil::uniform_workload(g), sched_name,
        /*seed_schedulers=*/false, caps, /*trials=*/5);
    table.add_row(topology, cell.scheduler, cell.makespan[0].mean(),
                  cell.makespan[1].mean(), cell.makespan[2].mean(),
                  cell.makespan[3].mean(),
                  cell.makespan[3].mean() / cell.makespan[0].mean());
  };
  {
    const Grid topo(12);
    const DenseMetric metric(topo.graph);
    run_capacities("grid12", topo.graph, metric, "grid");
    run_capacities("grid12", topo.graph, metric, "greedy-ff");
  }
  {
    const Star topo(8, 8);
    const DenseMetric metric(topo.graph);
    run_capacities("star8x8", topo.graph, metric, "star");
    run_capacities("star8x8", topo.graph, metric, "greedy-ff");
  }
  benchutil::emit_table("capacity", table);
}

void BM_CongestionAnalysis(benchmark::State& state) {
  const Grid topo(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(topo.graph);
  Rng rng(5);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = 2}, rng);
  auto sched = make_scheduler("greedy-ff");
  const Schedule s = sched->run(inst, metric);
  for (auto _ : state) {
    const CongestionReport r = analyze_congestion(inst, metric, s);
    benchmark::DoNotOptimize(r.peak_load);
  }
}
BENCHMARK(BM_CongestionAnalysis)->Arg(8)->Arg(16)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("congestion", argc, argv);
  print_series();
  capacity_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
