// E12 — online extension (paper's open question #1): transactions released
// over time, scheduler commits without future knowledge.
//
// Series: FIFO dispatch vs window-batched greedy (several window sizes) vs
// the clairvoyant offline greedy on the same instances. Reported ratio is
// makespan / offline-greedy makespan (an upper bound on the competitive
// ratio vs OPT multiplied by the offline algorithm's own approximation).
// Expected shape: batching with a window near the natural batch span beats
// FIFO under bursts; all online variants stay within a small factor of
// offline when the horizon is short, degrading as arrivals stretch out
// (the makespan becomes arrival-dominated).
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "core/online.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/online.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

struct OnlineRow {
  double makespan_mean = 0;
  double vs_offline_mean = 0;
};

template <typename MakeArrivals>
OnlineRow run_online_trials(const Graph& g, const Metric& metric,
                            OnlineScheduler& sched,
                            const MakeArrivals& make_arrivals, int trials,
                            std::uint64_t seed0) {
  Stats makespan, vs_offline;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t seed = seed0 + static_cast<std::uint64_t>(t);
    Rng rng(seed);
    const Instance inst = generate_uniform(
        g, {.num_objects = 8, .objects_per_txn = 2}, rng);
    Rng arrival_rng(seed + 9999);
    const ArrivalTimes arrival = make_arrivals(inst, arrival_rng);
    const Schedule s = sched.run_online(inst, metric, arrival);
    const auto vr = validate_online(inst, metric, arrival, s);
    DTM_REQUIRE(vr.ok, "infeasible online schedule: " << vr.summary());

    GreedyOptions gopts;
    gopts.rule = ColoringRule::kFirstFit;
    gopts.compact = true;
    GreedyScheduler offline(gopts);
    const Time off = offline.run(inst, metric).makespan();
    makespan.add(static_cast<double>(s.makespan()));
    vs_offline.add(static_cast<double>(s.makespan()) /
                   static_cast<double>(std::max<Time>(off, 1)));
  }
  return {makespan.mean(), vs_offline.mean()};
}

void print_series() {
  benchutil::print_header(
      "E12 — online scheduling (open question #1)",
      "FIFO dispatch vs window-batched §2.3 greedy vs clairvoyant offline; "
      "ratio = makespan / offline greedy makespan");
  Table table({"graph", "arrivals", "horizon", "algo", "makespan(mean)",
               "vs offline(mean)"});
  const Grid grid(10);
  const DenseMetric grid_metric(grid.graph);
  const Clique clique(64);
  const DenseMetric clique_metric(clique.graph);

  struct ArrivalKind {
    const char* name;
    Time horizon;
    bool bursty;
  };
  const ArrivalKind kinds[] = {
      {"all-at-0", 0, false},
      {"uniform", 64, false},
      {"uniform", 512, false},
      {"bursty x4", 64, true},
  };
  for (const auto& [gname, graph, metric] :
       {std::tuple<const char*, const Graph&, const Metric&>{
            "grid10", grid.graph, grid_metric},
        std::tuple<const char*, const Graph&, const Metric&>{
            "clique64", clique.graph, clique_metric}}) {
    for (const ArrivalKind& kind : kinds) {
      auto make_arrivals = [&](const Instance& inst, Rng& rng) {
        if (kind.horizon == 0) {
          return ArrivalTimes(inst.num_transactions(), 0);
        }
        return kind.bursty
                   ? generate_bursty_arrivals(inst.num_transactions(),
                                              kind.horizon, 4, rng)
                   : generate_arrivals(inst.num_transactions(), kind.horizon,
                                       rng);
      };
      {
        OnlineFifoScheduler fifo;
        const OnlineRow row = run_online_trials(graph, metric, fifo,
                                                make_arrivals, 5, 31);
        table.add_row(gname, kind.name, kind.horizon, "fifo",
                      row.makespan_mean, row.vs_offline_mean);
      }
      for (Time window : {Time{8}, Time{32}}) {
        OnlineBatchScheduler batch({.window = window});
        const OnlineRow row = run_online_trials(graph, metric, batch,
                                                make_arrivals, 5, 31);
        table.add_row(gname, kind.name, kind.horizon, batch.name(),
                      row.makespan_mean, row.vs_offline_mean);
      }
    }
  }
  benchutil::emit_table("main", table);
}

void BM_OnlineFifo(benchmark::State& state) {
  const Grid grid(static_cast<std::size_t>(state.range(0)));
  const DenseMetric metric(grid.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      grid.graph, {.num_objects = 8, .objects_per_txn = 2}, rng);
  Rng arng(4);
  const ArrivalTimes arrival =
      generate_arrivals(inst.num_transactions(), 64, arng);
  for (auto _ : state) {
    OnlineFifoScheduler sched;
    const Schedule s = sched.run_online(inst, metric, arrival);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_OnlineFifo)->Arg(8)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("online", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
