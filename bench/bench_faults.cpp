// E18 — fault injection & recovery: executing the paper's schedules on an
// unreliable substrate (sim/faults.hpp) and measuring how far the realized
// makespan inflates past the planned one.
//
// Series: fault rate x topology (line / grid / cluster / clique) x
// scheduler. Per cell we plan the schedule on the reliable model, then
// re-execute it with transient link outages at rate p and transfer loss at
// rate p/4 under the default recovery policy (retransmit with backoff,
// reroute around down links, degraded commits). Expected shape: inflation
// grows monotonically in p — the fault oracle's afflicted sets are nested
// across rates (sim/faults.hpp) — and topologies with route diversity
// (grid, clique) recover by rerouting while the line can only stall.
//
// E19 rides in the same binary: the faults × capacity sweep the unified
// execution engine unlocked (sim/engine.hpp) — the same planned policies
// re-executed with bounded-capacity FIFO links *and* the fault model at
// once, a configuration no pre-engine simulator could express.
//
// --smoke runs a reduced rate sweep with fewer trials; the recorded
// BENCH_faults.json baseline is the smoke artifact so CI can re-run and
// bench_compare it cheaply.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/clique.hpp"
#include "graph/topologies/cluster.hpp"
#include "graph/topologies/grid.hpp"
#include "graph/topologies/line.hpp"
#include "sched/registry.hpp"
#include "sched/reschedule.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace {

using namespace dtm;

struct CellStats {
  Stats planned, realized, inflation, injected, reroutes, degraded;
};

// Plans on the reliable model, executes on the faulty substrate. The fault
// seed equals the trial seed, so a given trial sees nested fault sets
// across rates (the monotonicity the series is meant to show).
CellStats run_cell(const Graph& g, const Metric& metric,
                   const std::string& sched_name, double rate, int trials) {
  CellStats cs;
  const auto make_inst = benchutil::uniform_workload(g);
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(trials);
       ++seed) {
    const Instance inst = make_inst(seed);
    auto sched = make_scheduler_for(inst, sched_name, seed);
    const Schedule s = sched->run(inst, metric);
    DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");

    FaultConfig fc;
    fc.link_outage_rate = rate;
    fc.loss_rate = rate / 4;
    fc.seed = seed;
    const FaultModel model(fc);
    SimOptions opts;
    opts.faults = &model;
    const SimResult r = simulate(inst, metric, s, opts);
    DTM_REQUIRE(r.ok, "fault run failed: " << r.summary());
    DTM_REQUIRE(r.realized_makespan >= r.planned_makespan,
                "realized makespan below planned");
    cs.planned.add(static_cast<double>(r.planned_makespan));
    cs.realized.add(static_cast<double>(r.realized_makespan));
    cs.inflation.add(static_cast<double>(r.realized_makespan) /
                     static_cast<double>(std::max<Time>(r.planned_makespan, 1)));
    cs.injected.add(static_cast<double>(r.faults.injected));
    cs.reroutes.add(static_cast<double>(r.faults.reroutes));
    cs.degraded.add(static_cast<double>(r.faults.degraded_commits));
  }
  return cs;
}

void print_series(bool smoke) {
  benchutil::print_header(
      "E18 — fault injection & recovery",
      "planned schedules re-executed with link outages (rate p) and "
      "transfer loss (p/4); inflation = realized/planned is monotone in p "
      "(nested fault sets)");
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.05, 0.2}
            : std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2};
  const int trials = smoke ? 2 : 5;

  const Line line(64);
  const Grid grid(8);
  const ClusterGraph cluster(4, 8, 8);
  const Clique clique(16);
  const DenseMetric line_m(line.graph);
  const DenseMetric grid_m(grid.graph);
  const DenseMetric cluster_m(cluster.graph);
  const DenseMetric clique_m(clique.graph);
  const struct {
    const char* label;
    const Graph* g;
    const Metric* m;
    std::vector<std::string> scheds;
  } cases[] = {
      {"line64", &line.graph, &line_m, {"line", "greedy-ff"}},
      {"grid8", &grid.graph, &grid_m, {"grid", "greedy-ff"}},
      {"cluster4x8", &cluster.graph, &cluster_m, {"cluster", "greedy-ff"}},
      {"clique16", &clique.graph, &clique_m, {"greedy-paper", "greedy-ff"}},
  };

  Table table({"topology", "scheduler", "rate", "planned(mean)",
               "realized(mean)", "inflation(mean)", "injected(mean)",
               "reroutes(mean)", "degraded(mean)"});
  for (const auto& c : cases) {
    for (const std::string& sched_name : c.scheds) {
      double prev_realized = 0;
      for (const double rate : rates) {
        const CellStats cs = run_cell(*c.g, *c.m, sched_name, rate, trials);
        // The line has no alternate routes, so recovery is stall-only and
        // the nesting argument makes even the mean strictly well-ordered.
        if (std::string(c.label) == "line64") {
          DTM_REQUIRE(cs.realized.mean() >= prev_realized,
                      "line inflation not monotone at rate " << rate);
        }
        prev_realized = cs.realized.mean();
        table.add_row(c.label, sched_name, rate, cs.planned.mean(),
                      cs.realized.mean(), cs.inflation.mean(),
                      cs.injected.mean(), cs.reroutes.mean(),
                      cs.degraded.mean());
      }
    }
  }
  benchutil::emit_table("main", table);
}

// Recovery-policy ablation at a fixed fault rate: rerouting versus
// stall-only waiting on topologies with and without route diversity.
void policy_series(bool smoke) {
  benchutil::print_header(
      "E18b — recovery policy ablation (rate 0.1)",
      "reroute-around-outages vs stall-until-repair; rerouting only helps "
      "where alternate routes exist");
  const int trials = smoke ? 2 : 5;
  const Grid grid(8);
  const ClusterGraph cluster(4, 8, 8);
  const DenseMetric grid_m(grid.graph);
  const DenseMetric cluster_m(cluster.graph);
  const struct {
    const char* label;
    const Graph* g;
    const Metric* m;
    const char* sched;
  } cases[] = {
      {"grid8", &grid.graph, &grid_m, "grid"},
      {"cluster4x8", &cluster.graph, &cluster_m, "cluster"},
  };

  Table table({"topology", "policy", "realized(mean)", "inflation(mean)",
               "reroutes(mean)", "stall steps(mean)"});
  for (const auto& c : cases) {
    for (const bool reroute : {true, false}) {
      Stats realized, inflation, reroutes, stalls;
      const auto make_inst = benchutil::uniform_workload(*c.g);
      for (std::uint64_t seed = 1;
           seed <= static_cast<std::uint64_t>(trials); ++seed) {
        const Instance inst = make_inst(seed);
        auto sched = make_scheduler_for(inst, c.sched, seed);
        const Schedule s = sched->run(inst, *c.m);
        FaultConfig fc;
        fc.link_outage_rate = 0.1;
        fc.seed = seed;
        const FaultModel model(fc);
        SimOptions opts;
        opts.faults = &model;
        opts.recovery.reroute = reroute;
        const SimResult r = simulate(inst, *c.m, s, opts);
        DTM_REQUIRE(r.ok, "fault run failed: " << r.summary());
        realized.add(static_cast<double>(r.realized_makespan));
        inflation.add(
            static_cast<double>(r.realized_makespan) /
            static_cast<double>(std::max<Time>(r.planned_makespan, 1)));
        reroutes.add(static_cast<double>(r.faults.reroutes));
        stalls.add(static_cast<double>(r.faults.stall_steps));
      }
      table.add_row(c.label, reroute ? "reroute" : "stall", realized.mean(),
                    inflation.mean(), reroutes.mean(), stalls.mean());
    }
  }
  benchutil::emit_table("policy", table);
}

// E19 — faults × capacity: the composed substrate (FaultyLinks over
// BoundedCapacityLinks). Per cell the planned visit orders re-execute with
// FIFO links of capacity C while outages (rate p) block or reroute queued
// objects, slowdowns inflate traversals, and lossy sends back off before
// entering the queues. Expected shape: the two stressors compound — queue
// wait grows as capacity tightens, and faults on top of tight links cost
// more than either alone.
void faultcap_series(bool smoke) {
  benchutil::print_header(
      "E19 — faults x capacity (composed substrates)",
      "visit orders re-executed on bounded FIFO links under the fault "
      "model; makespan and queue wait vs outage rate p and capacity C");
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.05, 0.1, 0.2};
  const std::vector<std::size_t> caps =
      smoke ? std::vector<std::size_t>{0, 1}
            : std::vector<std::size_t>{0, 4, 2, 1};
  const int trials = smoke ? 2 : 5;

  const Grid grid(8);
  const ClusterGraph cluster(4, 8, 8);
  const DenseMetric grid_m(grid.graph);
  const DenseMetric cluster_m(cluster.graph);
  const struct {
    const char* label;
    const Graph* g;
    const Metric* m;
    std::vector<std::string> scheds;
  } cases[] = {
      {"grid8", &grid.graph, &grid_m, {"grid", "greedy-ff"}},
      {"cluster4x8", &cluster.graph, &cluster_m, {"cluster", "greedy-ff"}},
  };

  Table table({"topology", "scheduler", "rate", "capacity", "makespan(mean)",
               "queue wait(mean)", "injected(mean)", "reroutes(mean)"});
  for (const auto& c : cases) {
    for (const std::string& sched_name : c.scheds) {
      for (const double rate : rates) {
        const auto faults_for = [rate](std::uint64_t seed) {
          benchutil::TrialFaults tf;
          if (rate > 0) {
            FaultConfig fc;
            fc.link_outage_rate = rate;
            fc.loss_rate = rate / 4;
            fc.seed = seed;
            tf.model = std::make_unique<FaultModel>(fc);
          }
          return tf;
        };
        const benchutil::CapacityCellStats cell =
            benchutil::run_capacity_cell(*c.m, benchutil::uniform_workload(*c.g),
                                         sched_name, /*seed_schedulers=*/true,
                                         caps, trials, faults_for);
        for (std::size_t i = 0; i < caps.size(); ++i) {
          table.add_row(c.label, sched_name, rate, caps[i],
                        cell.makespan[i].mean(), cell.queue_wait[i].mean(),
                        cell.injected[i].mean(), cell.reroutes[i].mean());
        }
      }
    }
  }
  benchutil::emit_table("faultcap", table);
}

// E20 — adaptive rescheduling: the slack-triggered splice policy
// (sched/reschedule.hpp) against a passive baseline on the SAME stepwise
// faulty substrate. Per trial the schedule is planned on the reliable
// model, then re-executed twice with identical fault streams: once with a
// reschedule hook that declines every splice (present, so the dispatch
// and commit discipline match the active run exactly) and once with the
// registry rescheduler under the slack policy. recovered = passive -
// active realized makespan. The improve-or-decline guard in
// reschedule_from only splices plans that project a strictly earlier
// completion, so the active mean must not exceed the passive mean in any
// cell — asserted below, which makes the recorded artifact a CI gate for
// the guard itself.
//
// This series runs AFTER write_artifact and records into its own report
// (BenchReport::clear + telemetry reset), so BENCH_faults.json stays
// cell-identical to a pre-E20 run; --reschedule-json writes the separate
// BENCH_reschedule.json artifact.
// Threshold 6 empirically filters noise splices (marginal projected gains
// that fault noise can erase — the line topologies at rates 0.1–0.2)
// while keeping the real recoveries (grid8 at rate 0.2 recovers 8–16
// steps of mean makespan); 4 regresses line64 trials, 8 loses the grid
// wins.
constexpr ReschedulePolicy kE20Policy{
    .slack_threshold = 6, .cooldown = 8, .max_reschedules = 4};

struct ReschedCellStats {
  Stats planned, passive, active, recovered, splices;
};

ReschedCellStats run_resched_cell(const Graph& g, const Metric& metric,
                                  const std::string& sched_name, double rate,
                                  int trials) {
  ReschedCellStats cs;
  const auto make_inst = benchutil::uniform_workload(g);
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(trials);
       ++seed) {
    const Instance inst = make_inst(seed);
    auto sched = make_scheduler_for(inst, sched_name, seed);
    const Schedule s = sched->run(inst, metric);
    DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");

    FaultConfig fc;
    fc.link_outage_rate = rate;
    fc.loss_rate = rate / 4;
    fc.seed = seed;
    const FaultModel model(fc);

    SimOptions passive;
    passive.faults = &model;
    passive.reschedule = [](const PartialExecution&) {
      return std::unique_ptr<Schedule>();  // stall/reroute only, never splice
    };
    passive.reschedule_policy = kE20Policy;
    const SimResult pr = simulate(inst, metric, s, passive);
    DTM_REQUIRE(pr.ok, "passive run failed: " << pr.summary());
    DTM_REQUIRE(pr.reschedules == 0, "declining hook spliced");

    SimOptions active;
    active.faults = &model;
    active.reschedule = make_rescheduler(inst, metric, sched_name, seed);
    active.reschedule_policy = kE20Policy;
    const SimResult ar = simulate(inst, metric, s, active);
    DTM_REQUIRE(ar.ok, "active run failed: " << ar.summary());

    cs.planned.add(static_cast<double>(pr.planned_makespan));
    cs.passive.add(static_cast<double>(pr.realized_makespan));
    cs.active.add(static_cast<double>(ar.realized_makespan));
    cs.recovered.add(static_cast<double>(pr.realized_makespan) -
                     static_cast<double>(ar.realized_makespan));
    cs.splices.add(static_cast<double>(ar.reschedules));
  }
  return cs;
}

void reschedule_series(bool smoke) {
  benchutil::print_header(
      "E20 — adaptive rescheduling (active splice vs passive recovery)",
      "slack-triggered suffix reschedules vs the stall/reroute baseline on "
      "the same stepwise faulty substrate; recovered = passive - active "
      "realized makespan, never negative per cell (improve-or-decline "
      "guard)");
  const std::vector<double> rates =
      smoke ? std::vector<double>{0.0, 0.05, 0.2}
            : std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2};
  const int trials = smoke ? 2 : 5;

  const Line line(64);
  const Grid grid(8);
  const ClusterGraph cluster(4, 8, 8);
  const Clique clique(16);
  const DenseMetric line_m(line.graph);
  const DenseMetric grid_m(grid.graph);
  const DenseMetric cluster_m(cluster.graph);
  const DenseMetric clique_m(clique.graph);
  const struct {
    const char* label;
    const Graph* g;
    const Metric* m;
    std::vector<std::string> scheds;
  } cases[] = {
      {"line64", &line.graph, &line_m, {"line", "greedy-ff"}},
      {"grid8", &grid.graph, &grid_m, {"grid", "greedy-ff"}},
      {"cluster4x8", &cluster.graph, &cluster_m, {"cluster", "greedy-ff"}},
      {"clique16", &clique.graph, &clique_m, {"greedy-paper", "greedy-ff"}},
  };

  Table table({"topology", "scheduler", "rate", "planned(mean)",
               "passive(mean)", "active(mean)", "recovered(mean)",
               "splices(mean)"});
  for (const auto& c : cases) {
    for (const std::string& sched_name : c.scheds) {
      for (const double rate : rates) {
        const ReschedCellStats cs =
            run_resched_cell(*c.g, *c.m, sched_name, rate, trials);
        DTM_REQUIRE(cs.active.mean() <= cs.passive.mean(),
                    "active rescheduling worse than passive ("
                        << c.label << "/" << sched_name << " rate " << rate
                        << ": " << cs.active.mean() << " > "
                        << cs.passive.mean() << ")");
        table.add_row(c.label, sched_name, rate, cs.planned.mean(),
                      cs.passive.mean(), cs.active.mean(), cs.recovered.mean(),
                      cs.splices.mean());
      }
    }
  }
  benchutil::emit_table("reschedule", table);
}

// --trace-out: one dedicated composed run (grid8, greedy-ff, outage rate
// 0.1 + loss 0.025, capacity-1 FIFO links, seed 1) recorded as a Chrome
// trace. It runs AFTER write_artifact so the artifact's counters stay
// identical to an untraced run; CI validates the file with
// `trace_summarize --validate` and uploads it.
void write_smoke_trace(const std::string& path, const std::string& invocation) {
  const Grid grid(8);
  const DenseMetric metric(grid.graph);
  const Instance inst = benchutil::uniform_workload(grid.graph)(1);

  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  rec.set_provenance({
      {"bench", "faults"},
      {"invocation", invocation},
      {"scheduler", "greedy-ff"},
      {"seed", "1"},
      {"topology", "grid8"},
  });
  rec.set_enabled(true);

  auto sched = make_scheduler_for(inst, "greedy-ff", 1);
  const Schedule s = sched->run(inst, metric);
  DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
  FaultConfig fc;
  fc.link_outage_rate = 0.1;
  fc.loss_rate = 0.025;
  fc.seed = 1;
  const FaultModel model(fc);
  CapacitySimOptions opts;
  opts.capacity = 1;
  opts.faults = &model;
  const CapacitySimResult r = simulate_with_capacity(inst, metric, s, opts);
  rec.set_enabled(false);
  DTM_REQUIRE(r.ok, "traced run failed: " << r.error);

  std::ofstream out(path);
  DTM_REQUIRE(out.good(), "cannot open --trace-out file " << path);
  out << rec.to_chrome_json();
  std::cout << "wrote " << rec.size() << "-event trace to " << path << "\n";
}

// --resched-trace-out: one dedicated active-reschedule run recorded as a
// Chrome trace. The config is chosen so the slack policy fires at least
// once (asserted), so the trace always contains a reschedule instant for
// trace_summarize --validate / the CI structural gate to see. Runs after
// both artifacts so their counters stay identical to an untraced run.
void write_resched_trace(const std::string& path,
                         const std::string& invocation) {
  const Grid grid(8);
  const DenseMetric metric(grid.graph);
  const Instance inst = benchutil::uniform_workload(grid.graph)(1);

  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  rec.set_provenance({
      {"bench", "faults"},
      {"invocation", invocation},
      {"scheduler", "greedy-ff"},
      {"seed", "1"},
      {"series", "reschedule"},
      {"topology", "grid8"},
  });
  rec.set_enabled(true);

  auto sched = make_scheduler_for(inst, "greedy-ff", 1);
  const Schedule s = sched->run(inst, metric);
  DTM_REQUIRE(validate(inst, metric, s).ok, "infeasible schedule");
  FaultConfig fc;
  fc.link_outage_rate = 0.2;
  fc.loss_rate = 0.05;
  fc.seed = 1;
  const FaultModel model(fc);
  SimOptions opts;
  opts.faults = &model;
  opts.reschedule = make_rescheduler(inst, metric, "greedy-ff", 1);
  opts.reschedule_policy = kE20Policy;
  const SimResult r = simulate(inst, metric, s, opts);
  rec.set_enabled(false);
  DTM_REQUIRE(r.ok, "traced reschedule run failed: " << r.summary());
  DTM_REQUIRE(r.reschedules > 0,
              "reschedule trace config no longer splices — pick a config "
              "where the slack policy fires");

  std::ofstream out(path);
  DTM_REQUIRE(out.good(), "cannot open --resched-trace-out file " << path);
  out << rec.to_chrome_json();
  std::cout << "wrote " << rec.size() << "-event reschedule trace to " << path
            << " (" << r.reschedules << " splice(s))\n";
}

void BM_FaultSim(benchmark::State& state) {
  const Grid topo(8);
  const DenseMetric metric(topo.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 12, .objects_per_txn = 2}, rng);
  auto sched = make_scheduler_for(inst, "grid");
  const Schedule s = sched->run(inst, metric);
  FaultConfig fc;
  fc.link_outage_rate = 0.01 * static_cast<double>(state.range(0));
  fc.loss_rate = fc.link_outage_rate / 4;
  const FaultModel model(fc);
  SimOptions opts;
  opts.faults = &model;
  for (auto _ : state) {
    const SimResult r = simulate(inst, metric, s, opts);
    benchmark::DoNotOptimize(r.realized_makespan);
  }
}
BENCHMARK(BM_FaultSim)->Arg(0)->Arg(5)->Arg(20)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  // Strip --smoke / --trace-out before BenchMain / google-benchmark see
  // the flags.
  const bool smoke = dtm::benchutil::strip_flag(argc, argv, "--smoke");
  const std::string trace_out =
      dtm::benchutil::strip_value_flag(argc, argv, "--trace-out");
  const std::string resched_json =
      dtm::benchutil::strip_value_flag(argc, argv, "--reschedule-json");
  const std::string resched_trace =
      dtm::benchutil::strip_value_flag(argc, argv, "--resched-trace-out");
  dtm::benchutil::BenchMain bm("faults", argc, argv);
  print_series(smoke);
  policy_series(smoke);
  faultcap_series(smoke);
  bm.write_artifact();
  if (!trace_out.empty()) write_smoke_trace(trace_out, bm.invocation());

  // E20 runs after the faults artifact (and its trace) so its series and
  // telemetry land in a fresh report: BENCH_faults.json stays cell-identical
  // to a pre-E20 binary, and BENCH_reschedule.json's counters cover only the
  // reschedule sweep.
  dtm::benchutil::BenchReport::instance().clear();
  dtm::TelemetryRegistry::global().reset();
  reschedule_series(smoke);
  if (!resched_json.empty()) {
    std::ofstream out(resched_json);
    DTM_REQUIRE(out.good(),
                "cannot open --reschedule-json file " << resched_json);
    out << dtm::benchutil::BenchReport::instance().to_json("reschedule",
                                                           bm.invocation())
        << '\n';
    std::cout << "\nwrote " << resched_json << "\n";
  }
  if (!resched_trace.empty()) {
    write_resched_trace(resched_trace, bm.invocation());
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
