// E5 — Theorem 4 + Algorithm 1 + Fig. 3 (Cluster): the scheduler is an
// O(min(kβ, 40^k ln^k m)) approximation w.h.p.
//
// Series 1 (crossover): fixed α, k, σ; sweep β. Approach 1's ratio grows
// with β while Approach 2's stays roughly flat, so they cross; the auto
// selector should track the minimum of the two.
// Series 2 (locality): single-cluster objects -> O(k) regardless of γ.
#include <atomic>

#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/cluster.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void crossover_series() {
  benchutil::print_header(
      "E5a / Theorem 4 — Cluster approach crossover",
      "Approach 1 is O(kβ), Approach 2 is O(40^k ln^k m); sweeping β shows "
      "the crossover and the auto selector tracking the min");
  Table table({"alpha", "beta", "gamma", "k", "sigma(req)", "approach",
               "LB(mean)", "makespan(mean)", "ratio(mean)"});
  const std::size_t alpha = 8, sigma = 4;
  // k = 1 reaches the theoretical crossover kβ ≈ 40·ln m at feasible β;
  // k = 2 shows the regime where Approach 1 stays ahead (40^k explodes).
  const std::pair<std::size_t, std::vector<std::size_t>> sweeps[] = {
      {1, {8, 32, 128, 256}},
      {2, {2, 4, 8, 16}},
  };
  for (const auto& [k, betas] : sweeps) {
    for (std::size_t beta : betas) {
      const ClusterGraph topo(alpha, beta, static_cast<Weight>(beta));
      const DenseMetric metric(topo.graph);
      const auto make_inst = [&, k = k](std::uint64_t seed) {
        Rng rng(seed);
        return generate_cluster_spread(topo, 3 * alpha, k, sigma, rng);
      };
      for (auto [name, sched_name] :
           {std::pair{"greedy(A1)", "cluster-greedy"},
            std::pair{"random(A2)", "cluster-random"},
            std::pair{"auto", "cluster"},
            std::pair{"best(min)", "cluster-best"}}) {
        const auto summary = benchutil::run_trials(
            metric, make_inst,
            [&](const Instance& inst, std::uint64_t seed) {
              return make_scheduler_for(inst, sched_name, seed);
            },
            /*trials=*/5, /*seed0=*/40 * beta + k);
        table.add_row(alpha, beta, beta, k, sigma, name,
                      summary.lower_bound.mean(), summary.makespan.mean(),
                      summary.ratio.mean());
      }
    }
  }
  benchutil::emit_table("crossover", table);
}

void locality_series() {
  benchutil::print_header(
      "E5b / Theorem 4 first case — single-cluster objects",
      "when every object stays in one cluster, greedy is O(k) and the "
      "bridge weight γ does not appear in the makespan");
  Table table({"alpha", "beta", "gamma", "LB(mean)", "makespan(mean)",
               "ratio(mean)", "paper k+2"});
  const std::size_t alpha = 6, beta = 8, k = 2;
  for (Weight gamma : {8, 64, 512}) {
    const ClusterGraph topo(alpha, beta, gamma);
    const DenseMetric metric(topo.graph);
    const auto summary = benchutil::run_trials(
        metric,
        [&](std::uint64_t seed) {
          Rng rng(seed);
          return generate_cluster_local(topo, 4 * alpha, k, rng);
        },
        [&](const Instance& inst, std::uint64_t seed) {
          return make_scheduler_for(inst, "cluster", seed);
        },
        /*trials=*/5, /*seed0=*/static_cast<std::uint64_t>(gamma));
    table.add_row(alpha, beta, gamma, summary.lower_bound.mean(),
                  summary.makespan.mean(), summary.ratio.mean(), k + 2);
  }
  benchutil::emit_table("locality", table);
}

void sigma_series() {
  benchutil::print_header(
      "E5c / Theorem 4 — spread sweep",
      "ratio vs σ (clusters per object): both approaches' makespans scale "
      "with σγ, so the ratio stays bounded as σ grows");
  Table table({"sigma(req)", "sigma(real)", "approach", "LB(mean)",
               "makespan(mean)", "ratio(mean)"});
  const std::size_t alpha = 8, beta = 4, k = 2;
  const ClusterGraph topo(alpha, beta, static_cast<Weight>(beta));
  const DenseMetric metric(topo.graph);
  for (std::size_t sigma : {1u, 2u, 4u, 8u}) {
    // Trials run concurrently; the realized-spread maximum is accumulated
    // with an atomic max (commutative, so the reported value is unchanged).
    std::atomic<std::size_t> realized{0};
    const auto make_inst = [&](std::uint64_t seed) {
      Rng rng(seed);
      Instance inst = generate_cluster_spread(topo, 3 * alpha, k, sigma, rng);
      std::size_t spread = max_cluster_spread(topo, inst);
      std::size_t cur = realized.load(std::memory_order_relaxed);
      while (spread > cur &&
             !realized.compare_exchange_weak(cur, spread,
                                             std::memory_order_relaxed)) {
      }
      return inst;
    };
    for (auto [name, sched_name] :
         {std::pair{"greedy(A1)", "cluster-greedy"},
          std::pair{"random(A2)", "cluster-random"}}) {
      const auto summary = benchutil::run_trials(
          metric, make_inst,
          [&](const Instance& inst, std::uint64_t seed) {
            return make_scheduler_for(inst, sched_name, seed);
          },
          /*trials=*/5, /*seed0=*/17 * sigma + 1);
      table.add_row(sigma, realized.load(), name, summary.lower_bound.mean(),
                    summary.makespan.mean(), summary.ratio.mean());
    }
  }
  benchutil::emit_table("sigma", table);
}

void BM_ClusterScheduler(benchmark::State& state) {
  const auto beta = static_cast<std::size_t>(state.range(0));
  const bool randomized = state.range(1) != 0;
  const ClusterGraph topo(8, beta, static_cast<Weight>(beta));
  const DenseMetric metric(topo.graph);
  Rng rng(11);
  const Instance inst = generate_cluster_spread(topo, 24, 2, 4, rng);
  for (auto _ : state) {
    auto sched = make_scheduler_for(
        inst, randomized ? "cluster-random" : "cluster-greedy", 13);
    const Schedule s = sched->run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_ClusterScheduler)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("cluster", argc, argv);
  crossover_series();
  locality_series();
  sigma_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
