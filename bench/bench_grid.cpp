// E4 — Theorem 3 + Fig. 2 (Grid): the subgrid schedule is an O(k·log m)
// approximation w.h.p. for random k-subset workloads.
//
// Series: ratio vs the certified LB across n, w, k, with the paper factor
// k·ln m for reference; also the chosen subgrid side √ξ. Expected shape:
// ratio grows with k and only logarithmically with m = max(n, w).
#include "bench_common.hpp"

#include <cmath>

#include "core/generators.hpp"
#include "graph/topologies/grid.hpp"
#include "sched/grid.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void print_series() {
  benchutil::print_header(
      "E4 / Theorem 3 — Grid",
      "subgrid schedule is O(k·log m)-approximate w.h.p. on random "
      "k-subsets (m = max(n, w))");
  Table table({"n(side)", "w", "k", "sqrt_xi", "LB(mean)", "makespan(mean)",
               "ratio(mean)", "paper k·ln m"});
  for (std::size_t n : {8u, 16u, 24u}) {
    const Grid topo(n);
    const DenseMetric metric(topo.graph);
    for (std::size_t w : {8u, 32u}) {
      for (std::size_t k : {1u, 2u, 3u}) {
        if (k > w) continue;
        // Probe run to report the chosen subgrid side: the registry wrapper
        // exposes the concrete scheduler through underlying().
        std::size_t probe_side = 0;
        {
          Rng rng(1);
          const Instance inst = generate_uniform(
              topo.graph, {.num_objects = w, .objects_per_txn = k}, rng);
          auto probe = make_scheduler_for(inst, "grid");
          (void)probe->run(inst, metric);
          probe_side = dynamic_cast<const GridScheduler&>(*probe->underlying())
                           .last_subgrid_side();
        }
        const auto summary = benchutil::run_trials(
            metric,
            [&](std::uint64_t seed) {
              Rng rng(seed);
              return generate_uniform(
                  topo.graph, {.num_objects = w, .objects_per_txn = k}, rng);
            },
            [&](const Instance& inst, std::uint64_t seed) {
              return make_scheduler_for(inst, "grid", seed);
            },
            /*trials=*/5, /*seed0=*/70 * n + 5 * w + k);
        const double m = static_cast<double>(std::max(n * 1, w));
        table.add_row(n, w, k, probe_side,
                      summary.lower_bound.mean(), summary.makespan.mean(),
                      summary.ratio.mean(),
                      static_cast<double>(k) * std::log(std::max(m, 2.0)));
      }
    }
  }
  benchutil::emit_table("main", table);
}

void BM_GridScheduler(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Grid topo(n);
  const DenseMetric metric(topo.graph);
  Rng rng(9);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    auto sched = make_scheduler_for(inst, "grid");
    const Schedule s = sched->run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_GridScheduler)->Arg(8)->Arg(16)->Arg(24)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("grid", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
