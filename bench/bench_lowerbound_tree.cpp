// E8 — §8.2 + Fig. 6 (tree construction): the same tour-vs-makespan gap on
// trees.
#include <benchmark/benchmark.h>

#include "bench_lowerbound_common.hpp"

namespace {

using namespace dtm;

void BM_BuildLbTreeInstance(benchmark::State& state) {
  const auto s = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Rng rng(7);
    const LowerBoundInstance li = make_lb_tree(s, rng);
    benchmark::DoNotOptimize(li.instance.num_transactions());
  }
}
BENCHMARK(BM_BuildLbTreeInstance)->Arg(4)->Arg(9)->Arg(16)->Unit(
    benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("lowerbound_tree", argc, argv);
  dtm::benchutil::lower_bound_series(
      "E8 / §8.2 — tree-of-blocks construction", /*tree=*/true,
      {4, 9, 16, 25, 36});
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
