// Shared series printer for the §8 lower-bound experiments (E7 grid /
// E8 tree).
//
// Theorem 6: on these instances every schedule runs Ω(n^{1/40}/log n) above
// the objects' TSP tour lengths, while tours stay O(n^{4/5}) = O(s²).
// The empirical series reports, per s:
//   * max object tour length (feasible walk upper bound) and its ratio to
//     the paper's 5s² cap (Lemma 10),
//   * the best schedule makespan found (greedy first-fit + compaction),
//   * gap = makespan / max tour — the quantity Theorem 6 proves cannot
//     shrink to O(1) under any scheduler,
//   * a per-block serialization floor s^{3/2} (every block's transactions
//     share that block's A object, so each block alone needs s^{3/2} steps).
#pragma once

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/validate.hpp"
#include "graph/metric.hpp"
#include "lb/bounds.hpp"
#include "lb/lb_instances.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace dtm::benchutil {

inline void lower_bound_series(const char* title, bool tree,
                               const std::vector<std::size_t>& sizes) {
  std::cout << "\n=== " << title << " ===\n"
            << "tours stay O(s^2) while every schedule pays a growing gap "
               "(Theorem 6)\n\n";
  Table table({"s", "n", "max tour", "tour/5s^2", "block floor s^1.5",
               "makespan(greedy-ff-compact)", "gap makespan/tour"});
  for (std::size_t s : sizes) {
    Rng rng(1234 + s);
    const LowerBoundInstance li =
        tree ? make_lb_tree(s, rng) : make_lb_grid(s, rng);
    const auto metric = make_metric(li.graph());
    const InstanceBounds bounds = compute_bounds(li.instance, *metric);

    GreedyOptions opts;
    opts.rule = ColoringRule::kFirstFit;
    opts.compact = true;
    GreedyScheduler sched(opts);
    const Schedule sol = [&] {
      ScopedPhaseTimer timer("phase.schedule");
      return sched.run(li.instance, *metric);
    }();
    const ValidationResult vr = [&] {
      ScopedPhaseTimer timer("phase.validation");
      return validate(li.instance, *metric, sol);
    }();
    DTM_REQUIRE(vr.ok, "infeasible §8 schedule: " << vr.summary());

    const double tour = static_cast<double>(bounds.max_walk_upper());
    const double cap = 5.0 * static_cast<double>(s) * static_cast<double>(s);
    const double floor_block =
        std::pow(static_cast<double>(s), 1.5);
    const double mk = static_cast<double>(sol.makespan());
    table.add_row(s, li.graph().num_nodes(), tour, tour / cap, floor_block,
                  mk, mk / std::max(tour, 1.0));
  }
  emit_table("main", table);
}

}  // namespace dtm::benchutil
