// E6 — Theorem 5 + Fig. 4 (Star): the segment schedule is an
// O(log β · min(kβ, c^k ln^k m)) approximation w.h.p.
//
// Series: ratio across (α, β, k) for both per-period strategies and the
// auto selector. Expected shape: ratio grows ~log β (period count) times
// the per-period cluster-style factor, and stays far below the naive
// serial baseline.
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/topologies/star.hpp"
#include "sched/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

void print_series() {
  benchutil::print_header(
      "E6 / Theorem 5 — Star",
      "segment schedule is O(log β · min(kβ, c^k ln^k m))-approximate");
  Table table({"alpha", "beta", "log2beta", "k", "strategy", "LB(mean)",
               "makespan(mean)", "ratio(mean)"});
  for (std::size_t alpha : {4u, 8u}) {
    for (std::size_t beta : {8u, 32u}) {
      const Star topo(alpha, beta);
      const DenseMetric metric(topo.graph);
      for (std::size_t k : {1u, 2u}) {
        const auto make_inst = [&](std::uint64_t seed) {
          Rng rng(seed);
          return generate_uniform(topo.graph,
                                  {.num_objects = 12, .objects_per_txn = k},
                                  rng);
        };
        for (auto [name, sched_name] :
             {std::pair{"greedy", "star-greedy"},
              std::pair{"random", "star-random"},
              std::pair{"auto", "star"},
              std::pair{"best(min)", "star-best"}}) {
          const auto summary = benchutil::run_trials(
              metric, make_inst,
              [&, sched_name = sched_name](const Instance& inst,
                                           std::uint64_t seed) {
                return make_scheduler_for(inst, sched_name, seed);
              },
              /*trials=*/5, /*seed0=*/100 * alpha + beta + k);
          table.add_row(alpha, beta, topo.num_segments(), k, name,
                        summary.lower_bound.mean(), summary.makespan.mean(),
                        summary.ratio.mean());
        }
        // Naive serial baseline for contrast.
        const auto serial = benchutil::run_trials(
            metric, make_inst,
            [&](const Instance& inst, std::uint64_t seed) {
              return make_scheduler_for(inst, "serial", seed);
            },
            /*trials=*/5, /*seed0=*/100 * alpha + beta + k);
        table.add_row(alpha, beta, topo.num_segments(), k, "serial-baseline",
                      serial.lower_bound.mean(), serial.makespan.mean(),
                      serial.ratio.mean());
      }
    }
  }
  benchutil::emit_table("main", table);
}

void locality_series() {
  benchutil::print_header(
      "E6b / §7 — ray-local objects",
      "when objects stay on one ray, every period's segments are "
      "independent and the star scheduler parallelizes across rays; the "
      "serial baseline pays Θ(α·β)");
  Table table({"alpha", "beta", "algo", "LB(mean)", "makespan(mean)",
               "ratio(mean)"});
  for (std::size_t alpha : {8u, 16u}) {
    for (std::size_t beta : {16u, 32u}) {
      const Star topo(alpha, beta);
      const DenseMetric metric(topo.graph);
      const auto make_inst = [&](std::uint64_t seed) {
        Rng rng(seed);
        return generate_star_ray_local(topo, 4 * alpha, 2, rng);
      };
      const auto star_summary = benchutil::run_trials(
          metric, make_inst,
          [&](const Instance& inst, std::uint64_t seed) {
            return make_scheduler_for(inst, "star", seed);
          },
          /*trials=*/5, /*seed0=*/7 * alpha + beta);
      table.add_row(alpha, beta, "star(§7)", star_summary.lower_bound.mean(),
                    star_summary.makespan.mean(), star_summary.ratio.mean());
      const auto serial_summary = benchutil::run_trials(
          metric, make_inst,
          [&](const Instance& inst, std::uint64_t seed) {
            return make_scheduler_for(inst, "serial", seed);
          },
          /*trials=*/5, /*seed0=*/7 * alpha + beta);
      table.add_row(alpha, beta, "serial", serial_summary.lower_bound.mean(),
                    serial_summary.makespan.mean(),
                    serial_summary.ratio.mean());
    }
  }
  benchutil::emit_table("locality", table);
}

void BM_StarScheduler(benchmark::State& state) {
  const auto beta = static_cast<std::size_t>(state.range(0));
  const Star topo(8, beta);
  const DenseMetric metric(topo.graph);
  Rng rng(15);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 12, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    auto sched = make_scheduler_for(inst, "star");
    const Schedule s = sched->run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_StarScheduler)->Arg(8)->Arg(32)->Arg(128)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("star", argc, argv);
  print_series();
  locality_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
