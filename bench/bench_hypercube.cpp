// E2 — §3.1 (Hypercube / Butterfly / diameter-d graphs): greedy gives an
// O(k·log n) (generally O(k·d)) approximation.
//
// Series: hypercubes and butterflies of growing dimension. Expected shape:
// ratio bounded by ~k·d and roughly (ratio / clique ratio) = O(d).
#include "bench_common.hpp"

#include "core/generators.hpp"
#include "graph/shortest_paths.hpp"
#include "graph/topologies/butterfly.hpp"
#include "graph/topologies/hypercube.hpp"
#include "sched/greedy.hpp"
#include "util/rng.hpp"

namespace {

using namespace dtm;

template <typename Topo>
void series_for(const char* name, const Topo& topo, std::size_t w,
                Table& table) {
  const DenseMetric metric(topo.graph);
  const Weight d = diameter(topo.graph);
  for (std::size_t k : {1u, 2u, 4u}) {
    const auto summary = benchutil::run_trials(
        metric,
        [&](std::uint64_t seed) {
          Rng rng(seed);
          return generate_uniform(
              topo.graph,
              {.num_objects = w,
               .objects_per_txn = k,
               .placement = ObjectPlacement::kRandomNode},
              rng);
        },
        [&](std::uint64_t seed) {
          GreedyOptions opts;
          opts.seed = seed;
          return std::make_unique<GreedyScheduler>(opts);
        },
        /*trials=*/5, /*seed0=*/500 * topo.graph.num_nodes() + k);
    table.add_row(name, topo.graph.num_nodes(), d, k,
                  summary.lower_bound.mean(), summary.makespan.mean(),
                  summary.ratio.mean(),
                  static_cast<double>(k) * static_cast<double>(d) + 2.0);
  }
}

void print_series() {
  benchutil::print_header(
      "E2 / §3.1 — Hypercube & Butterfly",
      "greedy is O(k·d)-approximate with d = diameter = Θ(log n)");
  Table table({"topology", "n", "diam", "k", "LB(mean)", "makespan(mean)",
               "ratio(mean)", "paper k·d+2"});
  for (std::size_t dim : {4u, 6u, 8u}) {
    series_for("hypercube", Hypercube(dim), 16, table);
  }
  for (std::size_t dim : {2u, 3u, 4u}) {
    series_for("butterfly", Butterfly(dim), 16, table);
  }
  benchutil::emit_table("main", table);
}

void BM_GreedyOnHypercube(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const Hypercube topo(dim);
  const DenseMetric metric(topo.graph);
  Rng rng(3);
  const Instance inst = generate_uniform(
      topo.graph, {.num_objects = 16, .objects_per_txn = 2}, rng);
  for (auto _ : state) {
    GreedyScheduler sched;
    const Schedule s = sched.run(inst, metric);
    benchmark::DoNotOptimize(s.commit_time.data());
  }
}
BENCHMARK(BM_GreedyOnHypercube)->Arg(4)->Arg(6)->Arg(8)->Unit(
    benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  dtm::benchutil::BenchMain bm("hypercube", argc, argv);
  print_series();
  bm.write_artifact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
