// Deterministic parallel trial driver for the experiment benches.
//
// Trials are seeded and independent, so they fan out across the shared
// ThreadPool. Each trial writes its samples into its own slot of a
// per-trial array and the Stats accumulators are then filled serially in
// trial order, so every series value (lower bound, makespan, ratio,
// communication) is bit-identical to a serial run regardless of worker
// count. Nested fan-out is fine: compute_bounds inside a trial reuses the
// same shared pool through parallel_for_blocks' caller-participation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "core/metrics.hpp"
#include "core/validate.hpp"
#include "lb/bounds.hpp"
#include "sched/scheduler.hpp"
#include "util/parallel_for.hpp"
#include "util/stats.hpp"
#include "util/telemetry.hpp"
#include "util/thread_pool.hpp"

namespace dtm::benchutil {

/// Peak resident set size of this process, in bytes; 0 where the platform
/// offers no getrusage. Linux reports ru_maxrss in KiB, macOS in bytes.
/// Informational only: every BENCH_*.json artifact records it so memory
/// blowups are visible in review, but bench_compare never gates on it
/// (it varies with allocator and machine, not with correctness).
inline std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru {};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(ru.ru_maxrss);
#else
  return static_cast<std::uint64_t>(ru.ru_maxrss) * 1024;
#endif
#else
  return 0;
#endif
}

struct TrialSummary {
  Stats makespan;
  Stats lower_bound;
  Stats ratio;
  Stats communication;
};

/// Runs `trials` seeded repetitions: build instance -> schedule -> validate
/// -> bound -> accumulate. `make_instance(seed)` returns a fresh instance;
/// `make_scheduler(inst, seed)` a fresh scheduler for that instance (the
/// instance-aware signature exists so benches can route through
/// `make_scheduler_for`, which recovers topology-specific schedulers from
/// the instance's graph). Trials run concurrently on the shared pool, so
/// both callbacks must be safe to call from several threads at once (derive
/// everything from the seed; synchronize any mutable capture). Each trial
/// contributes one sample to the phase timers (schedulers/bounds add their
/// own phases). `pool` overrides the shared pool (tests use it to prove
/// worker count cannot change the summary).
inline TrialSummary run_trials(
    const Metric& metric,
    const std::function<Instance(std::uint64_t)>& make_instance,
    const std::function<std::unique_ptr<Scheduler>(const Instance&,
                                                   std::uint64_t)>&
        make_scheduler,
    int trials, std::uint64_t seed0, ThreadPool* pool = nullptr) {
  struct TrialResult {
    double makespan = 0;
    double bound = 1;
    double communication = 0;
  };
  std::vector<TrialResult> results(
      trials > 0 ? static_cast<std::size_t>(trials) : 0);
  parallel_for(pool != nullptr ? *pool : shared_pool(), results.size(),
               [&](std::size_t t) {
    telemetry::count("bench.trials");
    const std::uint64_t seed = seed0 + t;
    const Instance inst = make_instance(seed);
    auto sched = make_scheduler(inst, seed);
    const Schedule s = [&] {
      ScopedPhaseTimer timer("phase.schedule");
      return sched->run(inst, metric);
    }();
    const ValidationResult vr = [&] {
      ScopedPhaseTimer timer("phase.validation");
      return validate(inst, metric, s);
    }();
    DTM_REQUIRE(vr.ok, "bench produced infeasible schedule: " << vr.summary());
    const InstanceBounds lb = compute_bounds(inst, metric);
    results[t].makespan = static_cast<double>(s.makespan());
    results[t].bound = static_cast<double>(std::max<Time>(lb.makespan_lb, 1));
    results[t].communication =
        static_cast<double>(compute_metrics(inst, metric, s).communication);
  });
  TrialSummary out;
  for (const TrialResult& r : results) {
    out.makespan.add(r.makespan);
    out.lower_bound.add(r.bound);
    out.ratio.add(r.makespan / r.bound);
    out.communication.add(r.communication);
  }
  return out;
}

/// Seed-only factory convenience for schedulers that don't need the
/// instance (topology-agnostic algorithms constructed by options).
inline TrialSummary run_trials(
    const Metric& metric,
    const std::function<Instance(std::uint64_t)>& make_instance,
    const std::function<std::unique_ptr<Scheduler>(std::uint64_t)>&
        make_scheduler,
    int trials, std::uint64_t seed0, ThreadPool* pool = nullptr) {
  return run_trials(
      metric, make_instance,
      std::function<std::unique_ptr<Scheduler>(const Instance&,
                                               std::uint64_t)>(
          [&make_scheduler](const Instance&, std::uint64_t seed) {
            return make_scheduler(seed);
          }),
      trials, seed0, pool);
}

}  // namespace dtm::benchutil
